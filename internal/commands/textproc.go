package commands

import (
	"math/rand"
	"regexp"
	"strconv"
	"strings"
)

func init() {
	register("shuf", shuf)
	register("url-extract", urlExtract)
	register("html-to-text", htmlToText)
	register("word-stem", wordStem)
	register("trigrams", trigrams)
	register("bigrams-aux", bigramsAux)
}

// shuf permutes input lines. Determinism hook: PASH_SHUF_SEED fixes the
// RNG seed so tests and benchmarks are reproducible.
func shuf(ctx *Context) error {
	limit := -1
	var operands []string
	args := ctx.Args
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "-n"):
			v := a[2:]
			if v == "" {
				i++
				if i >= len(args) {
					return ctx.Errorf("-n requires an argument")
				}
				v = args[i]
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return ctx.Errorf("invalid -n value %q", v)
			}
			limit = n
		case a == "-":
			operands = append(operands, a)
		case strings.HasPrefix(a, "-"):
			return ctx.Errorf("unsupported flag %q", a)
		default:
			operands = append(operands, a)
		}
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	var lines [][]byte
	for _, r := range readers {
		ls, err := ReadAllLines(r)
		if err != nil {
			return err
		}
		lines = append(lines, ls...)
	}
	seed := int64(1)
	if s := ctx.Getenv("PASH_SHUF_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = n
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
	if limit >= 0 && limit < len(lines) {
		lines = lines[:limit]
	}
	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	for _, l := range lines {
		if err := lw.WriteLine(l); err != nil {
			return err
		}
	}
	return lw.Flush()
}

var hrefRe = regexp.MustCompile(`href="([^"]+)"`)

// urlExtract prints every href target in its HTML input, one per line —
// the paper's url-extract stage (written in JavaScript there, §6.4).
func urlExtract(ctx *Context) error {
	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	err := EachLine(ctx.stdin(), func(line []byte) error {
		for _, m := range hrefRe.FindAllSubmatch(line, -1) {
			if err := lw.WriteLine(m[1]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return lw.Flush()
}

var (
	tagRe    = regexp.MustCompile(`<[^>]*>`)
	entityRe = regexp.MustCompile(`&[a-zA-Z]+;`)
)

// htmlToText strips tags and entities, leaving the text content — the
// paper's HTML-to-text conversion stage (the dominant §6.4 cost).
func htmlToText(ctx *Context) error {
	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	err := EachLine(ctx.stdin(), func(line []byte) error {
		out := tagRe.ReplaceAll(line, []byte(" "))
		out = entityRe.ReplaceAll(out, []byte(" "))
		trimmed := strings.TrimSpace(string(out))
		if trimmed == "" {
			return nil
		}
		return lw.WriteLine([]byte(trimmed))
	})
	if err != nil {
		return err
	}
	return lw.Flush()
}

var stemSuffixes = []string{"ization", "ational", "fulness", "ousness",
	"iveness", "tional", "biliti", "lessli", "entli", "ation", "alism",
	"aliti", "ousli", "iviti", "fulli", "enci", "anci", "abli", "izer",
	"ator", "alli", "bli", "ing", "ed", "ly", "es", "s"}

// wordStem applies a lightweight Porter-style suffix stripper to each
// whitespace-separated word — the paper's word-stem stage (Python there).
func wordStem(ctx *Context) error {
	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	err := EachLine(ctx.stdin(), func(line []byte) error {
		words := strings.Fields(string(line))
		for i, w := range words {
			words[i] = stemWord(w)
		}
		return lw.WriteLine([]byte(strings.Join(words, " ")))
	})
	if err != nil {
		return err
	}
	return lw.Flush()
}

func stemWord(w string) string {
	lw := strings.ToLower(w)
	for _, suf := range stemSuffixes {
		if strings.HasSuffix(lw, suf) && len(lw)-len(suf) >= 3 {
			return lw[:len(lw)-len(suf)]
		}
	}
	return lw
}

// trigrams emits the word trigrams of each line, one per output line —
// a per-line (stateless) n-gram stage for the web-indexing pipeline.
func trigrams(ctx *Context) error {
	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	err := EachLine(ctx.stdin(), func(line []byte) error {
		words := strings.Fields(string(line))
		for i := 0; i+2 < len(words); i++ {
			tri := words[i] + " " + words[i+1] + " " + words[i+2]
			if err := lw.WriteLine([]byte(tri)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return lw.Flush()
}

// bigramsAux emits the bigrams of its one-word-per-line input stream.
// The classic Bi-grams script shifts the whole stream by one token
// (tail -n +2 | paste) to do this; Bi-grams-opt replaces that stream
// surgery with this fused command (§6.1).
//
// With --marked it also emits its chunk's first and last words on marker
// lines ("\x01F w" before the bigrams, "\x01L w" after), which lets the
// pash-agg-bigrams aggregator stitch the bigrams that straddle chunk
// boundaries — making the command a parallelizable pure command with a
// custom (map, aggregate) pair per §3.2.
func bigramsAux(ctx *Context) error {
	marked := false
	for _, a := range ctx.Args {
		switch a {
		case "--marked":
			marked = true
		default:
			return ctx.Errorf("unsupported flag %q", a)
		}
	}
	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	prev := ""
	havePrev := false
	err := EachLine(ctx.stdin(), func(line []byte) error {
		w := strings.TrimSpace(string(line))
		if w == "" {
			return nil
		}
		if !havePrev && marked {
			if err := lw.WriteLine([]byte("\x01F " + w)); err != nil {
				return err
			}
		}
		if havePrev {
			if err := lw.WriteLine([]byte(prev + " " + w)); err != nil {
				return err
			}
		}
		prev = w
		havePrev = true
		return nil
	})
	if err != nil {
		return err
	}
	if marked && havePrev {
		if err := lw.WriteLine([]byte("\x01L " + prev)); err != nil {
			return err
		}
	}
	return lw.Flush()
}
