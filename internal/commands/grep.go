package commands

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

func init() { register("grep", grep) }

// grepSpec is a parsed grep invocation.
type grepSpec struct {
	ignoreCase, invert, count, lineNums, quiet bool
	filesWithMatches, wordMatch, lineMatch     bool
	fixed, onlyMatching                        bool
	forceName, suppressName                    bool
	maxCount                                   int
	patterns                                   []string
	operands                                   []string
}

// parseGrepArgs parses grep's argv. Errors are returned plain; the
// command path wraps them through ctx.Errorf.
func parseGrepArgs(args []string) (*grepSpec, error) {
	spec := &grepSpec{maxCount: -1}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) > 1 && a[0] == '-' && a != "--" {
			body := a[1:]
			if strings.HasPrefix(a, "--") {
				return nil, fmt.Errorf("unsupported flag %q", a)
			}
			for len(body) > 0 {
				c := body[0]
				body = body[1:]
				switch c {
				case 'i':
					spec.ignoreCase = true
				case 'v':
					spec.invert = true
				case 'c':
					spec.count = true
				case 'n':
					spec.lineNums = true
				case 'q':
					spec.quiet = true
				case 'l':
					spec.filesWithMatches = true
				case 'w':
					spec.wordMatch = true
				case 'x':
					spec.lineMatch = true
				case 'F':
					spec.fixed = true
				case 'E', 'G':
					// Both map onto Go regexp syntax.
				case 'o':
					spec.onlyMatching = true
				case 'H':
					spec.forceName = true
				case 'h':
					spec.suppressName = true
				case 'm':
					val := body
					body = ""
					if val == "" {
						i++
						if i >= len(args) {
							return nil, fmt.Errorf("-m requires an argument")
						}
						val = args[i]
					}
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("invalid -m argument %q", val)
					}
					spec.maxCount = n
				case 'e':
					val := body
					body = ""
					if val == "" {
						i++
						if i >= len(args) {
							return nil, fmt.Errorf("-e requires an argument")
						}
						val = args[i]
					}
					spec.patterns = append(spec.patterns, val)
				default:
					return nil, fmt.Errorf("unsupported flag -%c", c)
				}
			}
			continue
		}
		if a == "--" {
			spec.operands = append(spec.operands, args[i+1:]...)
			break
		}
		spec.operands = append(spec.operands, a)
	}
	if len(spec.patterns) == 0 {
		if len(spec.operands) == 0 {
			return nil, fmt.Errorf("missing pattern")
		}
		spec.patterns = spec.operands[0:1]
		spec.operands = spec.operands[1:]
	}
	return spec, nil
}

// regexpMetaBytes are the characters that make a pattern a real regexp;
// a pattern free of them matches exactly like a fixed string.
const regexpMetaBytes = `\.+*?()|[]{}^$`

func plainPattern(p string) bool {
	return !strings.ContainsAny(p, regexpMetaBytes)
}

// buildGrepMatcher compiles the spec's patterns into a per-line
// predicate.
//
// Fast path: fixed-string matching (-F, or patterns with no regexp
// metacharacters) runs on bytes.Contains/bytes.Equal with zero per-line
// allocations instead of compiling a regexp — on fixed patterns the
// stdlib substring search is several times faster than RE2's machine.
// The case-insensitive fixed path keeps the Unicode-lowering behaviour
// (and its allocations) for compatibility.
func buildGrepMatcher(spec *grepSpec) (func(line []byte) bool, *regexp.Regexp, error) {
	fixed := spec.fixed
	if !fixed && !spec.wordMatch && !spec.onlyMatching && !spec.ignoreCase {
		fixed = true
		for _, p := range spec.patterns {
			if !plainPattern(p) {
				fixed = false
				break
			}
		}
	}
	if fixed {
		if !spec.ignoreCase {
			pats := make([][]byte, len(spec.patterns))
			for i, p := range spec.patterns {
				pats[i] = []byte(p)
			}
			lineMatch := spec.lineMatch
			return func(line []byte) bool {
				for _, p := range pats {
					if lineMatch && bytes.Equal(line, p) {
						return true
					}
					if !lineMatch && bytes.Contains(line, p) {
						return true
					}
				}
				return false
			}, nil, nil
		}
		lowered := make([]string, len(spec.patterns))
		for i, p := range spec.patterns {
			lowered[i] = strings.ToLower(p)
		}
		lineMatch := spec.lineMatch
		return func(line []byte) bool {
			s := strings.ToLower(string(line))
			for _, p := range lowered {
				if lineMatch && s == p {
					return true
				}
				if !lineMatch && strings.Contains(s, p) {
					return true
				}
			}
			return false
		}, nil, nil
	}
	var res []*regexp.Regexp
	for _, p := range spec.patterns {
		if spec.wordMatch {
			p = `(^|\W)(` + p + `)($|\W)`
		}
		if spec.lineMatch {
			p = `^(` + p + `)$`
		}
		if spec.ignoreCase {
			p = `(?i)` + p
		}
		re, err := regexp.Compile(p)
		if err != nil {
			return nil, nil, fmt.Errorf("invalid pattern %q: %v", p, err)
		}
		res = append(res, re)
	}
	matcher := func(line []byte) bool {
		for _, re := range res {
			if re.Match(line) {
				return true
			}
		}
		return false
	}
	return matcher, res[0], nil
}

// grep searches inputs for lines matching a pattern. Supported flags:
// -i (ignore case), -v (invert), -c (count), -n (line numbers),
// -q (quiet), -l (names of matching files), -w (word match),
// -x (whole-line match), -F (fixed string), -E (extended regexp, the
// native Go syntax), -o (print matches only), -m NUM (stop after NUM),
// -e PAT (pattern), -H/-h (with/without filename prefixes).
//
// Patterns use Go's RE2 syntax, which covers the ERE subset the
// benchmarks rely on. Fixed-string patterns (explicit -F, or patterns
// without regexp metacharacters) bypass the regexp engine entirely.
func grep(ctx *Context) error {
	spec, err := parseGrepArgs(ctx.Args)
	if err != nil {
		return ctx.Errorf("%v", err)
	}
	invert := spec.invert
	count, lineNums, quiet := spec.count, spec.lineNums, spec.quiet
	filesWithMatches := spec.filesWithMatches
	maxCount := spec.maxCount
	operands := spec.operands

	matcher, onlyRe, err := buildGrepMatcher(spec)
	if err != nil {
		return ctx.Errorf("%v", err)
	}
	if spec.onlyMatching && onlyRe != nil {
		lw := NewLineWriter(ctx.Stdout)
		defer lw.Flush()
		readers, cleanup, err := ctx.OpenInputs(operands)
		if err != nil {
			return err
		}
		defer cleanup()
		matched := false
		err = EachLineReaders(readers, func(line []byte) error {
			for _, m := range onlyRe.FindAll(line, -1) {
				matched = true
				if err := lw.WriteLine(m); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := lw.Flush(); err != nil {
			return err
		}
		if !matched {
			return &ExitError{Code: 1}
		}
		return nil
	}

	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	showName := (len(operands) > 1 || spec.forceName) && !spec.suppressName
	anyMatch := false

	files := operands
	if len(files) == 0 {
		files = []string{"-"}
	}
	for _, name := range files {
		readers, cleanup, err := ctx.OpenInputs(sliceOf(name))
		if err != nil {
			return err
		}
		matches := 0
		lineno := 0
		stop := fmt.Errorf("grep: max count reached")
		err = EachLineReaders(readers, func(line []byte) error {
			lineno++
			m := matcher(line)
			if invert {
				m = !m
			}
			if !m {
				return nil
			}
			matches++
			anyMatch = true
			if quiet {
				return stop
			}
			if !count && !filesWithMatches {
				if showName {
					if err := lw.WriteString(displayName(name) + ":"); err != nil {
						return err
					}
				}
				if lineNums {
					if err := lw.WriteString(strconv.Itoa(lineno) + ":"); err != nil {
						return err
					}
				}
				if err := lw.WriteLine(line); err != nil {
					return err
				}
			}
			if maxCount >= 0 && matches >= maxCount {
				return stop
			}
			if filesWithMatches {
				return stop
			}
			return nil
		})
		cleanup()
		if err != nil && err != stop {
			return err
		}
		if count {
			prefix := ""
			if showName {
				prefix = displayName(name) + ":"
			}
			if err := lw.WriteString(prefix + strconv.Itoa(matches) + "\n"); err != nil {
				return err
			}
		}
		if filesWithMatches && matches > 0 {
			if err := lw.WriteLine([]byte(displayName(name))); err != nil {
				return err
			}
		}
		if quiet && anyMatch {
			break
		}
	}
	if err := lw.Flush(); err != nil {
		return err
	}
	if !anyMatch {
		return &ExitError{Code: 1}
	}
	return nil
}

func sliceOf(name string) []string {
	if name == "-" {
		return nil
	}
	return []string{name}
}

func displayName(name string) string {
	if name == "-" {
		return "(standard input)"
	}
	return name
}
