package commands

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

func init() { register("grep", grep) }

// grep searches inputs for lines matching a pattern. Supported flags:
// -i (ignore case), -v (invert), -c (count), -n (line numbers),
// -q (quiet), -l (names of matching files), -w (word match),
// -x (whole-line match), -F (fixed string), -E (extended regexp, the
// native Go syntax), -o (print matches only), -m NUM (stop after NUM),
// -e PAT (pattern), -H/-h (with/without filename prefixes).
//
// Patterns use Go's RE2 syntax, which covers the ERE subset the
// benchmarks rely on.
func grep(ctx *Context) error {
	var (
		ignoreCase, invert, count, lineNums, quiet bool
		filesWithMatches, wordMatch, lineMatch     bool
		fixed, onlyMatching                        bool
		forceName, suppressName                    bool
		maxCount                                   = -1
		patterns                                   []string
		operands                                   []string
	)
	args := ctx.Args
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) > 1 && a[0] == '-' && a != "--" {
			body := a[1:]
			if strings.HasPrefix(a, "--") {
				return ctx.Errorf("unsupported flag %q", a)
			}
			for len(body) > 0 {
				c := body[0]
				body = body[1:]
				switch c {
				case 'i':
					ignoreCase = true
				case 'v':
					invert = true
				case 'c':
					count = true
				case 'n':
					lineNums = true
				case 'q':
					quiet = true
				case 'l':
					filesWithMatches = true
				case 'w':
					wordMatch = true
				case 'x':
					lineMatch = true
				case 'F':
					fixed = true
				case 'E', 'G':
					// Both map onto Go regexp syntax.
				case 'o':
					onlyMatching = true
				case 'H':
					forceName = true
				case 'h':
					suppressName = true
				case 'm':
					val := body
					body = ""
					if val == "" {
						i++
						if i >= len(args) {
							return ctx.Errorf("-m requires an argument")
						}
						val = args[i]
					}
					n, err := strconv.Atoi(val)
					if err != nil {
						return ctx.Errorf("invalid -m argument %q", val)
					}
					maxCount = n
				case 'e':
					val := body
					body = ""
					if val == "" {
						i++
						if i >= len(args) {
							return ctx.Errorf("-e requires an argument")
						}
						val = args[i]
					}
					patterns = append(patterns, val)
				default:
					return ctx.Errorf("unsupported flag -%c", c)
				}
			}
			continue
		}
		if a == "--" {
			operands = append(operands, args[i+1:]...)
			break
		}
		operands = append(operands, a)
	}
	if len(patterns) == 0 {
		if len(operands) == 0 {
			return ctx.Errorf("missing pattern")
		}
		patterns = operands[0:1]
		operands = operands[1:]
	}

	var matcher func(line []byte) bool
	if fixed {
		pats := patterns
		if ignoreCase {
			lowered := make([]string, len(pats))
			for i, p := range pats {
				lowered[i] = strings.ToLower(p)
			}
			pats = lowered
		}
		matcher = func(line []byte) bool {
			s := string(line)
			if ignoreCase {
				s = strings.ToLower(s)
			}
			for _, p := range pats {
				if lineMatch && s == p {
					return true
				}
				if !lineMatch && strings.Contains(s, p) {
					return true
				}
			}
			return false
		}
	} else {
		var res []*regexp.Regexp
		for _, p := range patterns {
			if wordMatch {
				p = `(^|\W)(` + p + `)($|\W)`
			}
			if lineMatch {
				p = `^(` + p + `)$`
			}
			if ignoreCase {
				p = `(?i)` + p
			}
			re, err := regexp.Compile(p)
			if err != nil {
				return ctx.Errorf("invalid pattern %q: %v", p, err)
			}
			res = append(res, re)
		}
		matcher = func(line []byte) bool {
			for _, re := range res {
				if re.Match(line) {
					return true
				}
			}
			return false
		}
		if onlyMatching {
			re := res[0]
			lw := NewLineWriter(ctx.Stdout)
			defer lw.Flush()
			readers, cleanup, err := ctx.OpenInputs(operands)
			if err != nil {
				return err
			}
			defer cleanup()
			matched := false
			err = EachLineReaders(readers, func(line []byte) error {
				for _, m := range re.FindAll(line, -1) {
					matched = true
					if err := lw.WriteLine(m); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			if err := lw.Flush(); err != nil {
				return err
			}
			if !matched {
				return &ExitError{Code: 1}
			}
			return nil
		}
	}

	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	showName := (len(operands) > 1 || forceName) && !suppressName
	anyMatch := false

	files := operands
	if len(files) == 0 {
		files = []string{"-"}
	}
	for _, name := range files {
		readers, cleanup, err := ctx.OpenInputs(sliceOf(name))
		if err != nil {
			return err
		}
		matches := 0
		lineno := 0
		stop := fmt.Errorf("grep: max count reached")
		err = EachLineReaders(readers, func(line []byte) error {
			lineno++
			m := matcher(line)
			if invert {
				m = !m
			}
			if !m {
				return nil
			}
			matches++
			anyMatch = true
			if quiet {
				return stop
			}
			if !count && !filesWithMatches {
				if showName {
					if err := lw.WriteString(displayName(name) + ":"); err != nil {
						return err
					}
				}
				if lineNums {
					if err := lw.WriteString(strconv.Itoa(lineno) + ":"); err != nil {
						return err
					}
				}
				if err := lw.WriteLine(line); err != nil {
					return err
				}
			}
			if maxCount >= 0 && matches >= maxCount {
				return stop
			}
			if filesWithMatches {
				return stop
			}
			return nil
		})
		cleanup()
		if err != nil && err != stop {
			return err
		}
		if count {
			prefix := ""
			if showName {
				prefix = displayName(name) + ":"
			}
			if err := lw.WriteString(prefix + strconv.Itoa(matches) + "\n"); err != nil {
				return err
			}
		}
		if filesWithMatches && matches > 0 {
			if err := lw.WriteLine([]byte(displayName(name))); err != nil {
				return err
			}
		}
		if quiet && anyMatch {
			break
		}
	}
	if err := lw.Flush(); err != nil {
		return err
	}
	if !anyMatch {
		return &ExitError{Code: 1}
	}
	return nil
}

func sliceOf(name string) []string {
	if name == "-" {
		return nil
	}
	return []string{name}
}

func displayName(name string) string {
	if name == "-" {
		return "(standard input)"
	}
	return name
}
