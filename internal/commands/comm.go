package commands

import "bytes"

func init() { register("comm", comm) }

// comm compares two sorted files line by line, producing up to three
// columns: lines only in file1, lines only in file2, lines in both.
// Flags -1, -2, -3 suppress the corresponding column.
func comm(ctx *Context) error {
	sup := [4]bool{}
	var operands []string
	for _, a := range ctx.Args {
		switch a {
		case "-1":
			sup[1] = true
		case "-2":
			sup[2] = true
		case "-3":
			sup[3] = true
		case "-12", "-21":
			sup[1], sup[2] = true, true
		case "-13", "-31":
			sup[1], sup[3] = true, true
		case "-23", "-32":
			sup[2], sup[3] = true, true
		case "-123":
			sup[1], sup[2], sup[3] = true, true, true
		case "-":
			operands = append(operands, a)
		default:
			if len(a) > 1 && a[0] == '-' {
				return ctx.Errorf("unsupported flag %q", a)
			}
			operands = append(operands, a)
		}
	}
	if len(operands) != 2 {
		return ctx.Errorf("expected exactly two inputs")
	}
	r1s, cleanup1, err := ctx.OpenInputs(operands[0:1])
	if err != nil {
		return err
	}
	defer cleanup1()
	r2s, cleanup2, err := ctx.OpenInputs(operands[1:2])
	if err != nil {
		return err
	}
	defer cleanup2()

	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()

	// Column indentation depends on which earlier columns are shown.
	col2Prefix := ""
	if !sup[1] {
		col2Prefix = "\t"
	}
	col3Prefix := col2Prefix
	if !sup[2] {
		col3Prefix += "\t"
	}

	emit := func(col int, line []byte) error {
		if sup[col] {
			return nil
		}
		prefix := ""
		switch col {
		case 2:
			prefix = col2Prefix
		case 3:
			prefix = col3Prefix
		}
		if prefix != "" {
			if err := lw.WriteString(prefix); err != nil {
				return err
			}
		}
		return lw.WriteLine(line)
	}

	it1, it2 := NewLineIter(r1s[0]), NewLineIter(r2s[0])
	l1, ok1 := it1.Next()
	l2, ok2 := it2.Next()
	for ok1 || ok2 {
		switch {
		case !ok2 || (ok1 && bytes.Compare(l1, l2) < 0):
			if err := emit(1, l1); err != nil {
				return err
			}
			l1, ok1 = it1.Next()
		case !ok1 || bytes.Compare(l1, l2) > 0:
			if err := emit(2, l2); err != nil {
				return err
			}
			l2, ok2 = it2.Next()
		default:
			if err := emit(3, l1); err != nil {
				return err
			}
			l1, ok1 = it1.Next()
			l2, ok2 = it2.Next()
		}
	}
	if err := it1.Err(); err != nil {
		return err
	}
	if err := it2.Err(); err != nil {
		return err
	}
	return lw.Flush()
}
