package commands

import (
	"fmt"
	"io"
	"strings"
)

func init() { register("wc", wc) }

// wcCounts holds the per-input tallies.
type wcCounts struct {
	lines, words, bytes, chars int64
}

func (c *wcCounts) add(o wcCounts) {
	c.lines += o.lines
	c.words += o.words
	c.bytes += o.bytes
	c.chars += o.chars
}

// wc counts lines, words, bytes, and characters. Flags: -l, -w, -c, -m.
// Default output is lines, words, bytes. Multiple files get a totals row.
func wc(ctx *Context) error {
	var showLines, showWords, showBytes, showChars bool
	var operands []string
	for _, a := range ctx.Args {
		switch {
		case a == "-" || !strings.HasPrefix(a, "-"):
			operands = append(operands, a)
		default:
			for _, c := range a[1:] {
				switch c {
				case 'l':
					showLines = true
				case 'w':
					showWords = true
				case 'c':
					showBytes = true
				case 'm':
					showChars = true
				default:
					return ctx.Errorf("unsupported flag -%c", c)
				}
			}
		}
	}
	if !showLines && !showWords && !showBytes && !showChars {
		showLines, showWords, showBytes = true, true, true
	}

	lw := NewLineWriter(ctx.Stdout)
	defer lw.Flush()

	emit := func(c wcCounts, name string) error {
		var cols []string
		if showLines {
			cols = append(cols, fmt.Sprintf("%7d", c.lines))
		}
		if showWords {
			cols = append(cols, fmt.Sprintf("%7d", c.words))
		}
		if showChars {
			cols = append(cols, fmt.Sprintf("%7d", c.chars))
		}
		if showBytes {
			cols = append(cols, fmt.Sprintf("%7d", c.bytes))
		}
		// GNU wc: 7-wide right-aligned columns joined by one space; a
		// single-column result prints the bare number.
		row := strings.Join(cols, " ")
		if len(cols) == 1 {
			row = strings.TrimLeft(row, " ")
		}
		if name != "" {
			row += " " + name
		}
		return lw.WriteLine([]byte(row))
	}

	files := operands
	if len(files) == 0 {
		files = []string{"-"}
	}
	var total wcCounts
	for _, name := range files {
		readers, cleanup, err := ctx.OpenInputs(sliceOf(name))
		if err != nil {
			return err
		}
		c, err := countStream(readers[0])
		cleanup()
		if err != nil {
			return err
		}
		total.add(c)
		label := name
		if len(operands) == 0 {
			label = ""
		}
		if err := emit(c, label); err != nil {
			return err
		}
	}
	if len(files) > 1 {
		if err := emit(total, "total"); err != nil {
			return err
		}
	}
	return lw.Flush()
}

func countStream(r io.Reader) (wcCounts, error) {
	var c wcCounts
	inWord := false
	tally := func(buf []byte) {
		for _, b := range buf {
			c.bytes++
			if b == '\n' {
				c.lines++
			}
			space := b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' || b == '\r'
			if space {
				inWord = false
			} else if !inWord {
				inWord = true
				c.words++
			}
			// Character count: count UTF-8 leading bytes.
			if b < 0x80 || b >= 0xC0 {
				c.chars++
			}
		}
	}
	// Chunk sources hand us whole blocks without a copy.
	if cr, ok := r.(ChunkReader); ok {
		for {
			b, release, err := cr.ReadChunk()
			if err == io.EOF {
				return c, nil
			}
			if err != nil {
				return c, err
			}
			tally(b)
			release()
		}
	}
	buf := make([]byte, BlockSize)
	for {
		n, err := r.Read(buf)
		tally(buf[:n])
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return c, err
		}
	}
}
