package commands

import (
	"bytes"
	"os"
	"testing"
)

func TestDiffSmoke(t *testing.T) {
	dir := t.TempDir()
	writeFileT(t, dir, "a", "one\ntwo\nthree\nfour\n")
	writeFileT(t, dir, "b", "one\nTWO\nthree\nfour\nfive\n")
	got := runDiff(t, dir, "a", "b")
	want := "2c2\n< two\n---\n> TWO\n4a5\n> five\n"
	if got != want {
		t.Errorf("diff = %q, want %q", got, want)
	}
	// Identical files: no output, exit 0.
	writeFileT(t, dir, "c", "same\n")
	writeFileT(t, dir, "d", "same\n")
	if got := runDiff(t, dir, "c", "d"); got != "" {
		t.Errorf("identical diff = %q", got)
	}
	// Pure insertion at front.
	writeFileT(t, dir, "e", "x\ny\n")
	writeFileT(t, dir, "f", "new\nx\ny\n")
	if got := runDiff(t, dir, "e", "f"); got != "0a1\n> new\n" {
		t.Errorf("insertion diff = %q", got)
	}
	// Pure deletion.
	if got := runDiff(t, dir, "f", "e"); got != "1d0\n< new\n" {
		t.Errorf("deletion diff = %q", got)
	}
}

func writeFileT(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := osWriteFile(dir+"/"+name, content); err != nil {
		t.Fatal(err)
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func runDiff(t *testing.T, dir string, f1, f2 string) string {
	t.Helper()
	var out bytes.Buffer
	ctx := &Context{Args: []string{f1, f2}, Stdout: &out, FS: OSFS{Dir: dir}}
	err := Std().Run("diff", ctx)
	if err != nil {
		if _, ok := err.(*ExitError); !ok {
			t.Fatalf("diff: %v", err)
		}
	}
	return out.String()
}
