// Package commands implements the UNIX command substrate: streaming,
// in-process Go implementations of the POSIX/GNU commands that PaSh's
// benchmarks exercise, plus the custom commands used by the paper's use
// cases. Each command is a function from argv + stdio to an exit status,
// so the runtime can wire them into dataflow graphs with one goroutine
// per node — the in-process analog of one UNIX process per command.
package commands

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Func is a command implementation. A nil error is exit status 0; an
// *ExitError carries a non-zero status without aborting the pipeline; any
// other error aborts execution.
type Func func(ctx *Context) error

// ExitError is a non-zero exit status that is still a "normal" result
// (e.g. grep with no matches exits 1).
type ExitError struct {
	Code int
}

func (e *ExitError) Error() string { return fmt.Sprintf("exit status %d", e.Code) }

// ExitCode extracts the conventional exit code from a command error:
// 0 for nil, the embedded code for *ExitError, 1 otherwise.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee.Code
	}
	return 1
}

// ErrUsage signals a command-line usage error.
var ErrUsage = errors.New("usage error")

// FS abstracts file access so the runtime can splice dataflow edges in
// place of named files (virtual FIFOs) without commands noticing.
type FS interface {
	Open(path string) (io.ReadCloser, error)
	Create(path string) (io.WriteCloser, error)
	Append(path string) (io.WriteCloser, error)
}

// OSFS is the real filesystem rooted at Dir (when relative paths are
// used).
type OSFS struct {
	Dir string
}

func (fs OSFS) resolve(path string) string {
	if filepath.IsAbs(path) || fs.Dir == "" {
		return path
	}
	return filepath.Join(fs.Dir, path)
}

// Open opens a file for reading.
func (fs OSFS) Open(path string) (io.ReadCloser, error) { return os.Open(fs.resolve(path)) }

// Create truncates/creates a file for writing.
func (fs OSFS) Create(path string) (io.WriteCloser, error) { return os.Create(fs.resolve(path)) }

// Append opens a file for appending.
func (fs OSFS) Append(path string) (io.WriteCloser, error) {
	return os.OpenFile(fs.resolve(path), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Context carries everything a command invocation needs.
type Context struct {
	Name   string
	Args   []string
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
	FS     FS
	Env    map[string]string
	// Exec lets commands that run other commands (xargs) dispatch through
	// the registry.
	Exec func(name string, args []string, stdin io.Reader, stdout io.Writer) error
}

// Getenv looks up a context environment variable.
func (ctx *Context) Getenv(key string) string {
	if ctx.Env == nil {
		return ""
	}
	return ctx.Env[key]
}

// Errorf writes a diagnostic to stderr and returns a usage error.
func (ctx *Context) Errorf(format string, args ...interface{}) error {
	fmt.Fprintf(ctx.Stderr, "%s: %s\n", ctx.Name, fmt.Sprintf(format, args...))
	return fmt.Errorf("%s: %w", ctx.Name, ErrUsage)
}

// OpenInputs opens the command's input streams following the UNIX
// convention: each operand is opened as a file, "-" means stdin, and no
// operands at all means stdin.
func (ctx *Context) OpenInputs(operands []string) ([]io.Reader, func(), error) {
	if len(operands) == 0 {
		return []io.Reader{ctx.stdin()}, func() {}, nil
	}
	var readers []io.Reader
	var closers []io.Closer
	cleanup := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	for _, op := range operands {
		if op == "-" {
			readers = append(readers, ctx.stdin())
			continue
		}
		f, err := ctx.FS.Open(op)
		if err != nil {
			cleanup()
			fmt.Fprintf(ctx.Stderr, "%s: %v\n", ctx.Name, err)
			return nil, nil, err
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}
	return readers, cleanup, nil
}

func (ctx *Context) stdin() io.Reader {
	if ctx.Stdin == nil {
		return strings.NewReader("")
	}
	return ctx.Stdin
}

// Registry maps command names to implementations — the in-process PATH.
type Registry struct {
	mu   sync.RWMutex
	cmds map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cmds: map[string]Func{}}
}

// Register adds or replaces a command.
func (r *Registry) Register(name string, f Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cmds[name] = f
}

// Lookup finds a command.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.cmds[name]
	return f, ok
}

// Clone returns an independent copy of the registry: registrations on
// either side no longer affect the other. It backs the session layer's
// copy-on-write extension story.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nr := &Registry{cmds: make(map[string]Func, len(r.cmds))}
	for k, v := range r.cmds {
		nr.cmds[k] = v
	}
	return nr
}

// Names returns registered command names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.cmds))
	for k := range r.cmds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes a command by name with the given context. The context's
// Name is set and, when unset, stdio/FS get safe defaults. Exec defaults
// to dispatching back into the registry.
func (r *Registry) Run(name string, ctx *Context) error {
	f, ok := r.Lookup(name)
	if !ok {
		if ctx.Stderr != nil {
			fmt.Fprintf(ctx.Stderr, "%s: command not found\n", name)
		}
		return fmt.Errorf("commands: %q: not found", name)
	}
	ctx.Name = name
	if ctx.Stdout == nil {
		ctx.Stdout = io.Discard
	}
	if ctx.Stderr == nil {
		ctx.Stderr = io.Discard
	}
	if ctx.FS == nil {
		ctx.FS = OSFS{}
	}
	if ctx.Exec == nil {
		ctx.Exec = func(name string, args []string, stdin io.Reader, stdout io.Writer) error {
			sub := *ctx
			sub.Args = args
			sub.Stdin = stdin
			sub.Stdout = stdout
			return r.Run(name, &sub)
		}
	}
	return f(ctx)
}

var (
	stdOnce sync.Once
	stdReg  *Registry
)

// Std returns the shared registry with every built-in command installed.
func Std() *Registry {
	stdOnce.Do(func() {
		stdReg = NewRegistry()
		installAll(stdReg)
	})
	return stdReg
}

// NewStd returns a fresh registry with all built-ins, isolated from the
// shared one.
func NewStd() *Registry {
	r := NewRegistry()
	installAll(r)
	return r
}

func installAll(r *Registry) {
	for name, f := range builtins {
		r.Register(name, f)
	}
}

// builtins is populated by the per-command files' register calls.
var builtins = map[string]Func{}

func register(name string, f Func) {
	if _, dup := builtins[name]; dup {
		panic("commands: duplicate registration of " + name)
	}
	builtins[name] = f
}
