// Package commands implements the UNIX command substrate: streaming,
// in-process Go implementations of the POSIX/GNU commands that PaSh's
// benchmarks exercise, plus the custom commands used by the paper's use
// cases. Each command is a function from argv + stdio to an exit status,
// so the runtime can wire them into dataflow graphs with one goroutine
// per node — the in-process analog of one UNIX process per command.
package commands

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Func is a command implementation. A nil error is exit status 0; an
// *ExitError carries a non-zero status without aborting the pipeline; any
// other error aborts execution.
type Func func(ctx *Context) error

// ExitError is a non-zero exit status that is still a "normal" result
// (e.g. grep with no matches exits 1).
type ExitError struct {
	Code int
}

func (e *ExitError) Error() string { return fmt.Sprintf("exit status %d", e.Code) }

// ExitCode extracts the conventional exit code from a command error:
// 0 for nil, the embedded code for *ExitError, 1 otherwise.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee.Code
	}
	return 1
}

// ErrUsage signals a command-line usage error.
var ErrUsage = errors.New("usage error")

// FS abstracts file access so the runtime can splice dataflow edges in
// place of named files (virtual FIFOs) without commands noticing.
type FS interface {
	Open(path string) (io.ReadCloser, error)
	Create(path string) (io.WriteCloser, error)
	Append(path string) (io.WriteCloser, error)
}

// OSFS is the real filesystem rooted at Dir (when relative paths are
// used). With Jail set, access is confined to Dir: absolute paths and
// relative paths that escape Dir (via "..") fail instead of reaching
// the host filesystem — the sandbox used for untrusted scripts.
type OSFS struct {
	Dir  string
	Jail bool
}

// ErrJailEscape is returned for paths a jailed OSFS refuses to touch.
var ErrJailEscape = errors.New("commands: path escapes sandbox directory")

func (fs OSFS) resolve(path string) (string, error) {
	if fs.Jail {
		if filepath.IsAbs(path) || fs.Dir == "" {
			return "", fmt.Errorf("%w: %s", ErrJailEscape, path)
		}
		joined := filepath.Join(fs.Dir, path)
		root := filepath.Clean(fs.Dir)
		if joined != root && !strings.HasPrefix(joined, root+string(filepath.Separator)) {
			return "", fmt.Errorf("%w: %s", ErrJailEscape, path)
		}
		return joined, nil
	}
	if filepath.IsAbs(path) || fs.Dir == "" {
		return path, nil
	}
	return filepath.Join(fs.Dir, path), nil
}

// Open opens a file for reading.
func (fs OSFS) Open(path string) (io.ReadCloser, error) {
	p, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

// Create truncates/creates a file for writing.
func (fs OSFS) Create(path string) (io.WriteCloser, error) {
	p, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	return os.Create(p)
}

// Append opens a file for appending.
func (fs OSFS) Append(path string) (io.WriteCloser, error) {
	p, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	return os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// VirtualStreamPrefix namespaces the runtime's in-process edge streams
// in the overlay filesystem: an operand with this prefix names a live
// dataflow edge, not a real file. Extension-API aggregator wrappers use
// it to tell stream operands from configuration arguments.
const VirtualStreamPrefix = "/pash/edge/"

// Context carries everything a command invocation needs.
type Context struct {
	Name   string
	Args   []string
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
	FS     FS
	Env    map[string]string
	// Exec lets commands that run other commands (xargs) dispatch through
	// the registry.
	Exec func(name string, args []string, stdin io.Reader, stdout io.Writer) error
}

// Getenv looks up a context environment variable.
func (ctx *Context) Getenv(key string) string {
	if ctx.Env == nil {
		return ""
	}
	return ctx.Env[key]
}

// Errorf writes a diagnostic to stderr and returns a usage error.
func (ctx *Context) Errorf(format string, args ...interface{}) error {
	fmt.Fprintf(ctx.Stderr, "%s: %s\n", ctx.Name, fmt.Sprintf(format, args...))
	return fmt.Errorf("%s: %w", ctx.Name, ErrUsage)
}

// OpenInputs opens the command's input streams following the UNIX
// convention: each operand is opened as a file, "-" means stdin, and no
// operands at all means stdin.
func (ctx *Context) OpenInputs(operands []string) ([]io.Reader, func(), error) {
	if len(operands) == 0 {
		return []io.Reader{ctx.stdin()}, func() {}, nil
	}
	var readers []io.Reader
	var closers []io.Closer
	cleanup := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	for _, op := range operands {
		if op == "-" {
			readers = append(readers, ctx.stdin())
			continue
		}
		f, err := ctx.FS.Open(op)
		if err != nil {
			cleanup()
			fmt.Fprintf(ctx.Stderr, "%s: %v\n", ctx.Name, err)
			return nil, nil, err
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}
	return readers, cleanup, nil
}

func (ctx *Context) stdin() io.Reader {
	if ctx.Stdin == nil {
		return strings.NewReader("")
	}
	return ctx.Stdin
}

// KernelMaker builds the composable per-block kernel for one invocation
// of an externally-registered command, or reports false when this flag
// combination has no kernel form. It is the extension-API analog of the
// builtin kernelMakers table: a command that supplies one participates
// in stage fusion exactly like the builtins.
type KernelMaker func(args []string) (Kernel, bool)

// AggSpec is the extension-API (map, aggregate) pair for a
// user-registered pure command: running the map on each input chunk and
// the aggregate over the map outputs must reproduce the original
// command. It mirrors dfg.AggSpec without importing it (the compiler
// converts). Nil MapArgs/AggArgs mean "reuse the invocation's own
// flags" (the sort/sort -m convention); MapName "" means the command
// itself is its own map.
type AggSpec struct {
	MapName     string
	MapArgs     []string
	AggName     string
	AggArgs     []string
	Associative bool
	StopsEarly  bool
}

// registryGen hands out globally unique generation numbers: any two
// registries that ever diverged by a registration carry different
// generations, so plan-cache keys built from them can never collide.
var registryGen atomic.Uint64

// Registry maps command names to implementations — the in-process PATH —
// plus the extension metadata (kernels, aggregator specs) that lets
// user-registered commands join the planner's fast paths.
type Registry struct {
	mu      sync.RWMutex
	cmds    map[string]Func
	kernels map[string]KernelMaker
	aggs    map[string]*AggSpec
	// custom marks names whose implementation was supplied through the
	// public registration path. A custom implementation shadows every
	// piece of builtin metadata for that name: builtin kernels and
	// aggregator pairs no longer apply (they describe the replaced
	// implementation, not the user's).
	custom map[string]bool
	gen    uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cmds:    map[string]Func{},
		kernels: map[string]KernelMaker{},
		aggs:    map[string]*AggSpec{},
		custom:  map[string]bool{},
		gen:     registryGen.Add(1),
	}
}

// Register adds or replaces a command. The name is marked
// user-registered: it shadows the builtin of the same name completely,
// including the builtin's kernel and aggregator metadata (re-register
// those through RegisterKernel/RegisterAgg if the replacement supports
// them).
func (r *Registry) Register(name string, f Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cmds[name] = f
	r.custom[name] = true
	// A fresh implementation invalidates any extension metadata that
	// described the previous one.
	delete(r.kernels, name)
	delete(r.aggs, name)
	r.gen = registryGen.Add(1)
}

// RegisterKernel attaches a kernel constructor to a (user-registered)
// command name, making its invocations fusable and framed-splittable.
func (r *Registry) RegisterKernel(name string, mk KernelMaker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kernels[name] = mk
	r.gen = registryGen.Add(1)
}

// RegisterAgg attaches a (map, aggregate) pair to a (user-registered)
// command name, letting the parallelization transformation apply to its
// pure invocations.
func (r *Registry) RegisterAgg(name string, spec AggSpec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aggs[name] = &spec
	r.gen = registryGen.Add(1)
}

// Lookup finds a command.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.cmds[name]
	return f, ok
}

// IsCustom reports whether the name's implementation came through the
// public registration path (and therefore shadows builtin metadata).
func (r *Registry) IsCustom(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.custom[name]
}

// AggFor returns the externally-registered aggregator pair for a
// command name.
func (r *Registry) AggFor(name string) (AggSpec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if spec := r.aggs[name]; spec != nil {
		return *spec, true
	}
	return AggSpec{}, false
}

// NewKernel builds the kernel for an invocation, preferring
// externally-registered kernels and falling back to the builtin table —
// except for custom names, whose user implementation shadows the
// builtin kernel (which would be byte-faithful to the wrong command).
func (r *Registry) NewKernel(name string, args []string) (Kernel, bool) {
	r.mu.RLock()
	mk := r.kernels[name]
	custom := r.custom[name]
	r.mu.RUnlock()
	if mk != nil {
		return mk(args)
	}
	if custom {
		return nil, false
	}
	return NewKernel(name, args)
}

// KernelCapable reports whether the invocation can run as a fused
// kernel under this registry (the planner's dfg.Options.KernelCapable).
func (r *Registry) KernelCapable(name string, args []string) bool {
	_, ok := r.NewKernel(name, args)
	return ok
}

// Generation identifies the registry's registration state. It changes
// on every Register/RegisterKernel/RegisterAgg call and is globally
// unique across diverged registries, so plan caches can key on it.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Clone returns an independent copy of the registry: registrations on
// either side no longer affect the other. It backs the session layer's
// copy-on-write extension story. The clone keeps the generation — it is
// indistinguishable from its parent until someone registers into it.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nr := &Registry{
		cmds:    make(map[string]Func, len(r.cmds)),
		kernels: make(map[string]KernelMaker, len(r.kernels)),
		aggs:    make(map[string]*AggSpec, len(r.aggs)),
		custom:  make(map[string]bool, len(r.custom)),
		gen:     r.gen,
	}
	for k, v := range r.cmds {
		nr.cmds[k] = v
	}
	for k, v := range r.kernels {
		nr.kernels[k] = v
	}
	for k, v := range r.aggs {
		nr.aggs[k] = v
	}
	for k, v := range r.custom {
		nr.custom[k] = v
	}
	return nr
}

// Names returns registered command names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.cmds))
	for k := range r.cmds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes a command by name with the given context. The context's
// Name is set and, when unset, stdio/FS get safe defaults. Exec defaults
// to dispatching back into the registry.
func (r *Registry) Run(name string, ctx *Context) error {
	f, ok := r.Lookup(name)
	if !ok {
		if ctx.Stderr != nil {
			fmt.Fprintf(ctx.Stderr, "%s: command not found\n", name)
		}
		return fmt.Errorf("commands: %q: not found", name)
	}
	ctx.Name = name
	if ctx.Stdout == nil {
		ctx.Stdout = io.Discard
	}
	if ctx.Stderr == nil {
		ctx.Stderr = io.Discard
	}
	if ctx.FS == nil {
		ctx.FS = OSFS{}
	}
	if ctx.Exec == nil {
		ctx.Exec = func(name string, args []string, stdin io.Reader, stdout io.Writer) error {
			sub := *ctx
			sub.Args = args
			sub.Stdin = stdin
			sub.Stdout = stdout
			return r.Run(name, &sub)
		}
	}
	return f(ctx)
}

var (
	stdOnce sync.Once
	stdReg  *Registry
)

// Std returns the shared registry with every built-in command installed.
func Std() *Registry {
	stdOnce.Do(func() {
		stdReg = NewRegistry()
		installAll(stdReg)
	})
	return stdReg
}

// NewStd returns a fresh registry with all built-ins, isolated from the
// shared one.
func NewStd() *Registry {
	r := NewRegistry()
	installAll(r)
	return r
}

func installAll(r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Builtins bypass Register so they carry no custom mark: their
	// kernel and aggregator metadata stays live until a user
	// registration shadows the name.
	for name, f := range builtins {
		r.cmds[name] = f
	}
}

// builtins is populated by the per-command files' register calls.
var builtins = map[string]Func{}

func register(name string, f Func) {
	if _, dup := builtins[name]; dup {
		panic("commands: duplicate registration of " + name)
	}
	builtins[name] = f
}
