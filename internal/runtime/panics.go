package runtime

// Panic containment: every job, node goroutine, fused-kernel stage,
// and worker-dispatch goroutine runs under a recover boundary that
// converts panics — including those thrown by user-registered extension
// kernels and aggregators — into job-scoped errors. The process never
// crashes for one tenant's bug; the panic is recorded (with its stack)
// in a process-wide ring the daemon exposes on /metrics.

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is a recovered panic converted into an ordinary error: the
// job that hosted the panicking code fails with it while every other
// job — and the process — keeps running.
type PanicError struct {
	// Where names the recover boundary ("node grep", "job", "worker
	// dispatch").
	Where string
	// Value is the panic value's rendering.
	Value string
	// Stack is the captured goroutine stack at the panic site.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runtime: panic in %s: %s", e.Where, e.Value)
}

// PanicRecord is one contained panic, as exposed on /metrics.
type PanicRecord struct {
	Time  time.Time `json:"time"`
	Where string    `json:"where"`
	Value string    `json:"value"`
	// Stack is truncated to keep metrics rows bounded.
	Stack string `json:"stack"`
}

// PanicStats is the /metrics view of the containment boundary: how many
// panics the process has absorbed and the most recent ones.
type PanicStats struct {
	Count  int64         `json:"count"`
	Recent []PanicRecord `json:"recent,omitempty"`
}

const (
	panicRingSize = 8
	panicStackCap = 4096
	panicValueCap = 256
)

var (
	panicCount atomic.Int64
	panicMu    sync.Mutex
	panicRing  []PanicRecord
)

// recordPanic stores a contained panic in the process-wide ring.
func recordPanic(rec PanicRecord) {
	panicCount.Add(1)
	panicMu.Lock()
	panicRing = append(panicRing, rec)
	if len(panicRing) > panicRingSize {
		panicRing = panicRing[len(panicRing)-panicRingSize:]
	}
	panicMu.Unlock()
}

// Panics snapshots the containment counters for metrics export.
func Panics() PanicStats {
	st := PanicStats{Count: panicCount.Load()}
	panicMu.Lock()
	st.Recent = append(st.Recent, panicRing...)
	panicMu.Unlock()
	return st
}

// truncate bounds a captured string without splitting below n.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// AsPanicError converts a recovered value into the error the boundary
// reports, recording it in the process ring. Call it only with a
// non-nil recover() result.
func AsPanicError(where string, v any) *PanicError {
	buf := make([]byte, panicStackCap)
	buf = buf[:stdruntime.Stack(buf, false)]
	pe := &PanicError{
		Where: where,
		Value: truncate(fmt.Sprint(v), panicValueCap),
		Stack: string(buf),
	}
	recordPanic(PanicRecord{
		Time:  time.Now(),
		Where: pe.Where,
		Value: pe.Value,
		Stack: truncate(pe.Stack, panicStackCap),
	})
	return pe
}

// Contain is the standard recover boundary: defer it in any goroutine
// whose panic must fail only its own job. If a panic is in flight it is
// recorded and *errp is replaced with the PanicError (the original
// error, if any, is superseded — the panic is the more fundamental
// failure).
func Contain(where string, errp *error) {
	if r := recover(); r != nil {
		*errp = AsPanicError(where, r)
	}
}
