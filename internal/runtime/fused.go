package runtime

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/commands"
	"repro/internal/dfg"
)

// This file executes KindFused nodes: chains of kernel-capable
// stateless commands collapsed by the dfg fusion pass. One goroutine
// runs the composed kernels back to back over pooled blocks — zero
// intermediate pipes, zero per-stage goroutines — while attributing
// time and byte traffic to each stage so the meters the pipes used to
// provide survive fusion. See internal/runtime/README.md ("Stage
// fusion") for the contract.

// runFused dispatches a fused node: the kernel loop when every stage
// builds a kernel and fusion is enabled at execution time, the
// pipe-chain fallback otherwise.
func (ex *executor) runFused(n *dfg.Node, overlay *overlayFS) error {
	kernels, ok := buildKernels(ex.reg, n)
	if !ok || ex.cfg.DisableFusion {
		return ex.runFusedUnfused(n, overlay)
	}
	meters := make([]StageTime, len(n.Stages))
	for i := range meters {
		meters[i].Name = n.Stages[i].Name
	}
	defer ex.recordStages(n, meters)

	if n.Framed {
		cr, rok := ex.readers[n.In[0]].(commands.ChunkReader)
		cw, wok := ex.writers[n.Out[0]].(commands.ChunkWriter)
		if rok && wok {
			return runFusedFramed(cr, cw, kernels, meters)
		}
		// No chunk framing on these edges: degrade to the plain
		// streaming loop, mirroring runFramed's fallback.
	}
	return runFusedStreaming(ex.readers[n.In[0]], ex.writers[n.Out[0]], kernels, meters)
}

// buildKernels instantiates the chain's kernels through the execution
// registry, so externally-registered kernels (and user shadowing of
// builtin names) resolve exactly as the planner's capability check did.
func buildKernels(reg *commands.Registry, n *dfg.Node) ([]commands.Kernel, bool) {
	kernels := make([]commands.Kernel, len(n.Stages))
	for i, st := range n.Stages {
		k, ok := reg.NewKernel(st.Name, st.Args)
		if !ok {
			return nil, false
		}
		kernels[i] = k
	}
	return kernels, true
}

// applyStage runs one kernel over one block, charging the stage meter.
func applyStage(k commands.Kernel, m *StageTime, in []byte) []byte {
	start := time.Now()
	out := k.Apply(commands.GetBlock(), in)
	m.Active += time.Since(start)
	m.BytesIn += int64(len(in))
	m.BytesOut += int64(len(out))
	return out
}

// runFusedStreaming is the non-framed loop: read blocks (zero-copy when
// the input edge speaks chunks), pass each through the kernel chain in
// place, hand the survivor downstream, then cascade the kernels'
// end-of-stream output. The chain's exit status is the last stage's
// (shell pipeline semantics within the fused segment).
func runFusedStreaming(r io.Reader, w io.Writer, kernels []commands.Kernel, meters []StageTime) error {
	process := func(block []byte, release func()) error {
		cur := block
		owned := false // cur is a pool block we own (vs the pipe's block)
		for i, k := range kernels {
			if _, id := k.(interface{ IsPassThrough() }); id {
				continue
			}
			next := applyStage(k, &meters[i], cur)
			if owned {
				commands.PutBlock(cur)
			} else if release != nil {
				release()
				release = nil
			}
			cur = next
			owned = true
			if len(cur) == 0 {
				commands.PutBlock(cur)
				return nil
			}
		}
		if len(cur) == 0 {
			if owned {
				commands.PutBlock(cur)
			} else if release != nil {
				release()
			}
			return nil
		}
		// writeChunkTo transfers ownership (pool block or pipe block
		// alike); an un-transformed pipe block simply keeps its release
		// uncalled, per the ownership contract.
		return writeChunkTo(w, cur)
	}

	var loopErr error
	if cr, ok := r.(commands.ChunkReader); ok {
		for loopErr == nil {
			b, release, err := cr.ReadChunk()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			loopErr = process(b, release)
		}
	} else {
		for loopErr == nil {
			b := commands.GetBlock()
			var nr int
			var err error
			for nr == 0 && err == nil {
				nr, err = r.Read(b[:commands.BlockSize])
			}
			if nr > 0 {
				// The block came from the pool; recycle it once a stage
				// replaces it (ownership otherwise passes to the writer).
				loopErr = process(b[:nr], func() { commands.PutBlock(b) })
			} else {
				commands.PutBlock(b)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
	}
	if loopErr != nil {
		return loopErr
	}

	// End of stream: each stage's Finish output flows through the
	// stages after it, in order, before those stages finish themselves.
	tail := commands.GetBlock()
	for i := range kernels {
		start := time.Now()
		t := kernels[i].Finish(commands.GetBlock())
		meters[i].Active += time.Since(start)
		meters[i].BytesOut += int64(len(t))
		for j := i + 1; j < len(kernels) && len(t) > 0; j++ {
			if _, id := kernels[j].(interface{ IsPassThrough() }); id {
				continue
			}
			nt := applyStage(kernels[j], &meters[j], t)
			commands.PutBlock(t)
			t = nt
		}
		tail = append(tail, t...)
		commands.PutBlock(t)
	}
	if len(tail) > 0 {
		if err := writeChunkTo(w, tail); err != nil {
			return err
		}
	} else {
		commands.PutBlock(tail)
	}
	return kernels[len(kernels)-1].Status()
}

// runFusedFramed preserves the round-robin frame discipline: the whole
// kernel chain runs once per input chunk (Apply + Finish, resetting
// per-stream state), and exactly one output chunk is emitted per input
// chunk — empty ones included, as ordering tokens for the downstream
// merge. This is the fused equivalent of invoking each chain command
// once per chunk, which is what the unfused framed executor does.
func runFusedFramed(cr commands.ChunkReader, cw commands.ChunkWriter, kernels []commands.Kernel, meters []StageTime) error {
	for {
		b, release, err := cr.ReadChunk()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		cur := b
		owned := false
		for i, k := range kernels {
			if _, id := k.(interface{ IsPassThrough() }); id {
				continue
			}
			start := time.Now()
			next := k.Apply(commands.GetBlock(), cur)
			next = k.Finish(next)
			meters[i].Active += time.Since(start)
			meters[i].BytesIn += int64(len(cur))
			meters[i].BytesOut += int64(len(next))
			if owned {
				commands.PutBlock(cur)
			} else if release != nil {
				release()
				release = nil
			}
			cur = next
			owned = true
		}
		// One chunk out per chunk in, empty chunks included.
		if err := cw.WriteChunk(cur); err != nil {
			return err
		}
	}
}

// runFusedUnfused executes a fused node as its original command chain
// connected by internal pipes — one goroutine per stage, exactly what
// the graph looked like before fusion. It backs Config.DisableFusion
// (the fused-vs-unfused A/B in BenchmarkFusion) and the defensive case
// of a stage without a kernel at execution time.
func (ex *executor) runFusedUnfused(n *dfg.Node, overlay *overlayFS) error {
	if n.Framed {
		if err, ok := ex.runFusedUnfusedFramed(n, overlay); ok {
			return err
		}
	}
	var stdin io.Reader = ex.readers[n.In[0]]
	out := ex.writers[n.Out[0]]

	type stageIO struct {
		stdin  io.Reader
		stdout io.WriteCloser
		closeR io.Closer // internal pipe read end to close when done
	}
	ios := make([]stageIO, len(n.Stages))
	for i := range n.Stages {
		ios[i].stdin = stdin
		if i == len(n.Stages)-1 {
			ios[i].stdout = nopWriteCloser{out}
		} else {
			s := newEdgeStream(false, 0)
			ios[i].stdout = s.writer()
			stdin = s.reader()
			ios[i+1].closeR = s.reader()
		}
	}

	errs := make([]error, len(n.Stages))
	var wg sync.WaitGroup
	for i, st := range n.Stages {
		i, st := i, st
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx := &commands.Context{
				Args:   st.Args,
				Stdin:  ios[i].stdin,
				Stdout: ios[i].stdout,
				Stderr: ex.stdio.Stderr,
				FS:     overlay,
				Env:    ex.cfg.Env,
			}
			errs[i] = func() (err error) {
				defer Contain("fused stage "+st.Name, &err)
				return ex.reg.Run(st.Name, cctx)
			}()
			ios[i].stdout.Close()
			if ios[i].closeR != nil {
				ios[i].closeR.Close()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !isCleanTermination(err) {
			return err
		}
	}
	return errs[len(errs)-1]
}

// runFusedUnfusedFramed is the fallback's framed variant: every chain
// command runs once per input chunk, in order, exactly one output chunk
// per input chunk. It reports ok=false when the edges carry no chunk
// framing.
func (ex *executor) runFusedUnfusedFramed(n *dfg.Node, overlay *overlayFS) (error, bool) {
	cr, rok := ex.readers[n.In[0]].(commands.ChunkReader)
	cw, wok := ex.writers[n.Out[0]].(commands.ChunkWriter)
	if !rok || !wok {
		return nil, false
	}
	for {
		b, release, err := cr.ReadChunk()
		if err == io.EOF {
			return nil, true
		}
		if err != nil {
			return err, true
		}
		cur := b
		owned := false
		for _, st := range n.Stages {
			col := &chunkCollector{buf: commands.GetBlock()}
			cctx := &commands.Context{
				Args:   st.Args,
				Stdin:  bytes.NewReader(cur),
				Stdout: col,
				Stderr: ex.stdio.Stderr,
				FS:     overlay,
				Env:    ex.cfg.Env,
			}
			runErr := ex.reg.Run(st.Name, cctx)
			if owned {
				commands.PutBlock(cur)
			} else if release != nil {
				release()
				release = nil
			}
			if runErr != nil {
				// Per-chunk non-zero statuses (grep finding nothing in
				// this chunk) are normal; real failures abort the node.
				var ee *commands.ExitError
				if !errors.As(runErr, &ee) {
					commands.PutBlock(col.buf)
					return runErr, true
				}
			}
			cur = col.buf
			owned = true
		}
		if err := cw.WriteChunk(cur); err != nil {
			return err, true
		}
	}
}
