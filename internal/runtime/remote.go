package runtime

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/commands"
	"repro/internal/dfg"
)

// This file is the runtime side of the distributed data plane: the
// KindRemote node executor, the RemoteExecutor hook a worker-pool
// client plugs into, and the local interpretation of remote specs that
// serves both the no-pool case and the pool's failover path. The wire
// transport itself lives in internal/dist; the runtime only sees chunk
// streams. See internal/runtime/README.md ("Distributed execution").

// RemoteExecutor ships one remote node's work to a worker. The executor
// calls it once per KindRemote node; implementations must preserve the
// node's stream contract (framed: exactly one output chunk per input
// chunk; file-range: the slice's transformed bytes in order) even when
// a worker dies mid-stream — internal/dist does so by re-dispatching
// unacknowledged chunks through ExecRemoteLocal.
type RemoteExecutor interface {
	ExecRemote(ctx context.Context, req *RemoteRequest) error
}

// RemoteErrorClass partitions the errors a RemoteExecutor can hit into
// the three recovery behaviors. The runtime owns the taxonomy because
// the guarantee it encodes — a remote node's stream contract survives
// worker failure — is the runtime's, not the transport's; internal/dist
// supplies the stream-position knowledge by marking errors as it
// classifies them.
type RemoteErrorClass int

const (
	// RemoteErrFatal aborts the node with no retry and no failover:
	// the run was cancelled, the downstream consumer hung up (the
	// SIGPIPE analog), or the input side failed. Re-dispatching after
	// any of these would duplicate or fabricate work.
	RemoteErrFatal RemoteErrorClass = iota
	// RemoteErrRetryable is a transient dispatch failure — refused
	// dial, a reset during the plan frame — hit before any output byte
	// was consumed. The same worker may be retried with backoff;
	// nothing needs re-dispatching because nothing was acknowledged.
	RemoteErrRetryable
	// RemoteErrMidStream is a worker or transport death after the
	// stream was live: the unacknowledged window must re-dispatch (to a
	// surviving worker, or locally) and the failed worker marks down.
	RemoteErrMidStream
)

// markedError wraps an error with its remote classification.
type markedError struct {
	err   error
	class RemoteErrorClass
}

func (m *markedError) Error() string { return m.err.Error() }
func (m *markedError) Unwrap() error { return m.err }

// MarkRetryable tags err as a transient pre-stream dispatch failure.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &markedError{err: err, class: RemoteErrRetryable}
}

// MarkFatal tags err as non-recoverable for the remote node (input or
// downstream failure): no retry, no failover.
func MarkFatal(err error) error {
	if err == nil {
		return nil
	}
	return &markedError{err: err, class: RemoteErrFatal}
}

// ClassifyRemoteError maps an error from a remote dispatch onto its
// recovery behavior. Explicit marks win; cancellation, deadline expiry,
// and downstream hangup are fatal by construction; everything else on
// a live stream is a worker/transport death and re-dispatches.
func ClassifyRemoteError(err error) RemoteErrorClass {
	var m *markedError
	if errors.As(err, &m) {
		return m.class
	}
	if errors.Is(err, ErrDownstreamClosed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return RemoteErrFatal
	}
	return RemoteErrMidStream
}

// RemoteRequest carries everything one remote node execution needs.
type RemoteRequest struct {
	Spec *dfg.RemoteSpec
	// In streams the node's framed input chunks; nil for file-range
	// specs (the worker self-sources) and streamed specs (which use
	// Ins).
	In commands.ChunkReader
	// Ins streams a streamed spec's inputs in operand order: one entry
	// for a linear streamed chain, one per branch for an aggregation
	// subtree. Nil for framed and file-range specs.
	Ins []commands.ChunkReader
	// Out receives the node's output chunks in order.
	Out commands.ChunkWriter
	// Reg, Dir, Env, and Stderr configure local (fallback) execution of
	// the spec's stages.
	Reg    *commands.Registry
	Dir    string
	Env    map[string]string
	Stderr io.Writer
}

// runRemote executes a KindRemote node: through the configured remote
// executor when one is attached, locally otherwise (a plan distributed
// for a pool the run no longer has still computes the right bytes).
func (ex *executor) runRemote(ctx context.Context, n *dfg.Node) error {
	req := &RemoteRequest{
		Spec:   n.Remote,
		Out:    ex.writers[n.Out[0]].(commands.ChunkWriter),
		Reg:    ex.reg,
		Dir:    ex.cfg.Dir,
		Env:    ex.cfg.Env,
		Stderr: ex.stdio.Stderr,
	}
	switch {
	case n.Remote.Streamed:
		req.Ins = make([]commands.ChunkReader, len(n.In))
		for i, e := range n.In {
			cr, ok := ex.readers[e].(commands.ChunkReader)
			if !ok {
				return fmt.Errorf("runtime: remote node #%d input %d carries no chunk framing", n.ID, i)
			}
			req.Ins[i] = cr
		}
	case n.Remote.Path == "":
		cr, ok := ex.readers[n.In[0]].(commands.ChunkReader)
		if !ok {
			return fmt.Errorf("runtime: remote node #%d input carries no chunk framing", n.ID)
		}
		req.In = cr
	}
	if ex.cfg.Remote != nil {
		return ex.cfg.Remote.ExecRemote(ctx, req)
	}
	return ExecRemoteLocal(ctx, req)
}

// ExecRemoteLocal interprets a remote spec on the local machine: the
// exact computation a worker would perform, over the same chunk
// streams. The pool client uses it to fail over when a worker dies.
func ExecRemoteLocal(ctx context.Context, req *RemoteRequest) error {
	if req.Spec.Streamed {
		ins := make([]io.Reader, len(req.Ins))
		for i, cr := range req.Ins {
			ins[i] = ChunkReaderAsReader(cr)
		}
		return ExecStreamSpec(ctx, req.Reg, req.Spec, ins, chunkOnlyWriter{req.Out}, req.Dir, req.Env, req.Stderr)
	}
	chain, err := NewStageChain(req.Reg, req.Spec.Stages, req.Dir, req.Env, req.Stderr)
	if err != nil {
		return err
	}
	if req.Spec.Path != "" {
		r, err := OpenRange(req.Dir, req.Spec.Path, req.Spec.Slice, req.Spec.Of)
		if err != nil {
			return err
		}
		defer r.Close()
		return chain.Stream(r, chunkOnlyWriter{req.Out})
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, release, err := req.In.ReadChunk()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		out, err := chain.ApplyChunk(b)
		release()
		if err != nil {
			return err
		}
		if err := req.Out.WriteChunk(out); err != nil {
			return err
		}
	}
}

// chunkOnlyWriter adapts a ChunkWriter to io.Writer for streaming
// producers that do not transfer block ownership.
type chunkOnlyWriter struct{ cw commands.ChunkWriter }

func (w chunkOnlyWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := len(p)
		if n > commands.BlockSize {
			n = commands.BlockSize
		}
		blk := append(commands.GetBlock(), p[:n]...)
		if err := w.cw.WriteChunk(blk); err != nil {
			return total - len(p), err
		}
		p = p[n:]
	}
	return total, nil
}

func (w chunkOnlyWriter) WriteChunk(b []byte) error { return w.cw.WriteChunk(b) }

// StageChain executes a remote spec's linear stage chain: through
// composed kernels when every stage has one (the fused fast path), and
// through the full command implementations otherwise. It is shared by
// the local fallback path here and the dist worker's /exec handler.
type StageChain struct {
	reg    *commands.Registry
	stages []dfg.FusedStage
	stderr io.Writer
	env    map[string]string
	fs     commands.FS
	// kernelArgs pins the kernel construction inputs: kernels carry
	// per-stream state, so ApplyChunk builds a fresh set per chunk and
	// Stream one set per call.
	kernelCapable bool
	// kpool recycles kernel sets across chunks and requests. Finish
	// resets each kernel, so a set that completed cleanly is as good as
	// new; error paths drop the set instead of returning it. Shared
	// (same pointer) by WithEnv copies, so a cached chain template in
	// the dist worker amortizes kernel construction across requests.
	kpool *sync.Pool
}

// WithEnv returns a copy of the chain bound to env, sharing the
// validated stages and the kernel pool. The dist worker's plan cache
// stores an env-free chain template and binds each request's
// environment through this without re-validating the stages.
func (c *StageChain) WithEnv(env map[string]string) *StageChain {
	cp := *c
	cp.env = env
	return &cp
}

// NewStageChain validates the stages against the registry and prepares
// an executor for them.
func NewStageChain(reg *commands.Registry, stages []dfg.FusedStage, dir string, env map[string]string, stderr io.Writer) (*StageChain, error) {
	if len(stages) == 0 {
		return nil, errors.New("runtime: stage chain is empty")
	}
	if stderr == nil {
		stderr = io.Discard
	}
	c := &StageChain{
		reg: reg, stages: stages, stderr: stderr, env: env,
		fs: commands.OSFS{Dir: dir},
	}
	c.kernelCapable = true
	for _, st := range stages {
		if _, ok := reg.Lookup(st.Name); !ok {
			return nil, fmt.Errorf("runtime: stage chain: unknown command %q", st.Name)
		}
		if !reg.KernelCapable(st.Name, st.Args) {
			c.kernelCapable = false
		}
	}
	if c.kernelCapable {
		c.kpool = &sync.Pool{}
	}
	return c, nil
}

// buildKernels returns a kernel set for the chain: a pooled set when
// one is available, a freshly instantiated one otherwise.
func (c *StageChain) buildKernels() ([]commands.Kernel, bool) {
	if !c.kernelCapable {
		return nil, false
	}
	if v := c.kpool.Get(); v != nil {
		return v.([]commands.Kernel), true
	}
	ks := make([]commands.Kernel, len(c.stages))
	for i, st := range c.stages {
		k, ok := c.reg.NewKernel(st.Name, st.Args)
		if !ok {
			return nil, false
		}
		ks[i] = k
	}
	return ks, true
}

// releaseKernels returns a kernel set to the pool. Callers only release
// after a clean completion — Finish has reset every kernel — and drop
// the set on error paths, where kernel state is indeterminate.
func (c *StageChain) releaseKernels(ks []commands.Kernel) { c.kpool.Put(ks) }

// ApplyChunk runs the whole chain over one chunk as an independent
// stream (Apply + Finish per stage), returning a pooled output block
// the caller owns. The input chunk is not consumed. Per-chunk non-zero
// exit statuses (grep finding nothing) are normal and ignored.
func (c *StageChain) ApplyChunk(chunk []byte) ([]byte, error) {
	if ks, ok := c.buildKernels(); ok {
		cur := chunk
		owned := false
		for _, k := range ks {
			if _, id := k.(interface{ IsPassThrough() }); id {
				continue
			}
			next := k.Apply(commands.GetBlock(), cur)
			next = k.Finish(next)
			if owned {
				commands.PutBlock(cur)
			}
			cur = next
			owned = true
		}
		if !owned {
			cur = append(commands.GetBlock(), chunk...)
		}
		c.releaseKernels(ks)
		return cur, nil
	}
	cur := chunk
	owned := false
	for _, st := range c.stages {
		col := &chunkCollector{buf: commands.GetBlock()}
		cctx := &commands.Context{
			Args:   st.Args,
			Stdin:  bytes.NewReader(cur),
			Stdout: col,
			Stderr: c.stderr,
			FS:     c.fs,
			Env:    c.env,
		}
		runErr := c.reg.Run(st.Name, cctx)
		if owned {
			commands.PutBlock(cur)
		}
		if runErr != nil {
			var ee *commands.ExitError
			if !errors.As(runErr, &ee) {
				commands.PutBlock(col.buf)
				return nil, runErr
			}
		}
		cur = col.buf
		owned = true
	}
	return cur, nil
}

// Stream runs the chain over a whole byte stream: the kernel streaming
// loop when possible, a pipe-connected goroutine per stage otherwise.
// Per-stream non-zero exit statuses are normal and ignored; transport
// and usage failures propagate.
func (c *StageChain) Stream(r io.Reader, w io.Writer) error {
	if ks, ok := c.buildKernels(); ok {
		meters := make([]StageTime, len(ks))
		err := runFusedStreaming(r, w, ks, meters)
		if err == nil {
			c.releaseKernels(ks)
			return nil
		}
		var ee *commands.ExitError
		if errors.As(err, &ee) {
			return nil
		}
		return err
	}
	stdin := r
	errs := make([]error, len(c.stages))
	var wg sync.WaitGroup
	type closing struct {
		out io.WriteCloser
		in  io.Closer
	}
	ios := make([]closing, len(c.stages))
	for i := range c.stages {
		var stageIn io.Reader = stdin
		if i == len(c.stages)-1 {
			ios[i].out = nopWriteCloser{w}
		} else {
			s := newEdgeStream(false, 0)
			ios[i].out = s.writer()
			stdin = s.reader()
			ios[i+1].in = s.reader()
		}
		i, st, stageIn := i, c.stages[i], stageIn
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx := &commands.Context{
				Args:   st.Args,
				Stdin:  stageIn,
				Stdout: ios[i].out,
				Stderr: c.stderr,
				FS:     c.fs,
				Env:    c.env,
			}
			errs[i] = func() (err error) {
				defer Contain("chain stage "+st.Name, &err)
				return c.reg.Run(st.Name, cctx)
			}()
			ios[i].out.Close()
			if ios[i].in != nil {
				ios[i].in.Close()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !isCleanTermination(err) {
			return err
		}
	}
	return nil
}

// OpenRange opens the slice-th of n newline-aligned byte ranges of the
// file at path (resolved against dir), using the same alignment rule as
// the seek-based fileSplit: a range starts right after the first
// newline at or before its nominal byte offset, so every line lands in
// exactly one range and the concatenation of all ranges is the file.
// Workers and coordinator compute boundaries independently but
// identically — the file-range wire plan ships offsets as (slice, of),
// never as absolute positions.
func OpenRange(dir, path string, slice, of int) (io.ReadCloser, error) {
	if of < 1 || slice < 0 || slice >= of {
		return nil, fmt.Errorf("runtime: range %d/%d invalid", slice, of)
	}
	if !filepath.IsAbs(path) && dir != "" {
		path = filepath.Join(dir, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	lo, err := alignedOffset(f, size, slice, of)
	if err != nil {
		f.Close()
		return nil, err
	}
	hi, err := alignedOffset(f, size, slice+1, of)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &rangeReader{f: f, pos: lo, hi: hi}, nil
}

// alignedOffset computes the aligned start of range i of n.
func alignedOffset(f *os.File, size int64, i, n int) (int64, error) {
	if i <= 0 {
		return 0, nil
	}
	if i >= n {
		return size, nil
	}
	return alignToLineStart(f, size*int64(i)/int64(n))
}

// rangeReader reads [pos, hi) of f via ReadAt.
type rangeReader struct {
	f   *os.File
	pos int64
	hi  int64
}

func (r *rangeReader) Read(p []byte) (int, error) {
	if r.pos >= r.hi {
		return 0, io.EOF
	}
	if max := r.hi - r.pos; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.f.ReadAt(p, r.pos)
	r.pos += int64(n)
	if err == io.EOF && r.pos < r.hi {
		err = io.ErrUnexpectedEOF
	}
	if err == io.EOF {
		err = nil
	}
	if n > 0 {
		return n, nil
	}
	return n, err
}

func (r *rangeReader) Close() error { return r.f.Close() }
