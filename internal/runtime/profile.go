package runtime

import (
	"context"
	"fmt"
	"io"

	"time"

	"repro/internal/commands"
	"repro/internal/dfg"
)

// Profile executes the graph in measurement mode: nodes run one at a
// time in topological order with unbounded edge buffers, so each node's
// wall time is its true compute work — free of the scheduler-queuing
// noise that concurrent execution on a small host mixes in. The output
// is byte-identical to a normal execution; NodeTimes carry the clean
// works that the multicore scheduling simulator consumes.
//
// Not suitable for graphs with unbounded producers (yes | head): in
// measurement mode producers run to completion before their consumers.
func Profile(ctx context.Context, g *dfg.Graph, reg *commands.Registry, stdio StdIO, cfg Config) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if stdio.Stdout == nil {
		stdio.Stdout = io.Discard
	}
	if stdio.Stderr == nil {
		stdio.Stderr = io.Discard
	}
	ex := &executor{
		g: g, reg: reg, stdio: stdio, cfg: cfg,
		readers: map[*dfg.Edge]io.ReadCloser{},
		writers: map[*dfg.Edge]io.WriteCloser{},
		names:   map[*dfg.Edge]string{},
		meters:  map[*dfg.Node]*int64{},
	}
	for _, n := range g.Nodes {
		ex.meters[n] = new(int64)
	}
	osfs := commands.OSFS{Dir: cfg.Dir}
	for _, e := range ex.g.Edges {
		if err := ex.materializeUnbounded(e, osfs); err != nil {
			ex.closeEverything()
			return nil, err
		}
	}
	overlay := &overlayFS{base: osfs, streams: ex.readers, names: ex.names}

	order, err := topoOrder(g)
	if err != nil {
		return nil, err
	}
	res := &Result{NodeCount: len(g.Nodes)}
	finalNode := ex.finalNode()
	for _, n := range order {
		start := time.Now()
		err := ex.runNode(ctx, n, overlay)
		wall := time.Since(start)
		res.NodeTimes = append(res.NodeTimes, NodeTime{
			ID: n.ID, Name: n.Name, Wall: wall, Active: wall, Stages: ex.stagesFor(n),
		})
		code := commands.ExitCode(err)
		if err != nil && !isCleanTermination(err) {
			ex.closeEverything()
			return nil, fmt.Errorf("runtime: profile node %s: %w", n, err)
		}
		if n == finalNode {
			res.ExitCode = code
		}
		ex.closeNodeEdges(n)
	}
	ex.closeEverything()
	res.BytesMoved, res.ChunksMoved = ex.traffic()
	return res, nil
}

// materializeUnbounded is materialize with every internal edge given an
// unbounded buffer (so a producer can complete before its consumer
// starts).
func (ex *executor) materializeUnbounded(e *dfg.Edge, osfs commands.OSFS) error {
	if e.To != nil && e.From != nil {
		s := newEdgeStream(true, 0)
		ex.readers[e] = s.reader()
		ex.writers[e] = s.writer()
		ex.names[e] = fmt.Sprintf("%s%d", virtualPrefix, e.ID)
		ex.pipes = append(ex.pipes, s.p)
		return nil
	}
	return ex.materialize(e, osfs)
}

// topoOrder returns the graph's nodes in topological order.
func topoOrder(g *dfg.Graph) ([]*dfg.Node, error) {
	indeg := map[*dfg.Node]int{}
	for _, n := range g.Nodes {
		for _, e := range n.In {
			if e.From != nil {
				indeg[n]++
			}
		}
	}
	var queue []*dfg.Node
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var order []*dfg.Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Out {
			if e.To == nil {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("runtime: profile: graph has a cycle")
	}
	return order, nil
}
