package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/commands"
)

func TestBudgetZeroLimitsIsNil(t *testing.T) {
	if b := NewBudget(JobLimits{}); b != nil {
		t.Errorf("NewBudget(zero) = %v, want nil (unlimited path must stay free)", b)
	}
	// Every method must be nil-safe: the unlimited job carries a nil
	// *Budget through the whole runtime.
	var b *Budget
	if err := b.ChargePipe(1 << 20); err != nil {
		t.Errorf("nil ChargePipe = %v", err)
	}
	b.ReleasePipe(1 << 20)
	if err := b.ChargeOutput(1 << 30); err != nil {
		t.Errorf("nil ChargeOutput = %v", err)
	}
	if b.Exceeded() != nil {
		t.Errorf("nil Exceeded = %v", b.Exceeded())
	}
	if got := b.CapWidth(16); got != 16 {
		t.Errorf("nil CapWidth(16) = %d", got)
	}
	if u := b.Usage(); u != (BudgetUsage{}) {
		t.Errorf("nil Usage = %+v", u)
	}
	if b.Limits() != (JobLimits{}) {
		t.Errorf("nil Limits = %+v", b.Limits())
	}
}

func TestBudgetPipeAccounting(t *testing.T) {
	b := NewBudget(JobLimits{MaxPipeMemory: 100})
	if err := b.ChargePipe(60); err != nil {
		t.Fatal(err)
	}
	if err := b.ChargePipe(40); err != nil {
		t.Fatal(err)
	}
	// Exactly at the limit: not a breach.
	if be := b.Exceeded(); be != nil {
		t.Fatalf("at-limit charge tripped: %v", be)
	}
	// One byte over breaches, and the failed charge is not accounted.
	err := b.ChargePipe(1)
	if err == nil {
		t.Fatal("over-limit charge succeeded")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("breach does not match ErrBudgetExceeded: %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "pipe-memory" || be.Limit != 100 {
		t.Errorf("breach = %+v", be)
	}
	if u := b.Usage(); u.PipeBytes != 100 || u.PipeBytesPeak != 100 {
		t.Errorf("usage after failed charge = %+v, want 100/100", u)
	}
	// Releases make room again, but the breach stays frozen: the job is
	// already doomed, and Exceeded must keep naming the root cause.
	b.ReleasePipe(100)
	if u := b.Usage(); u.PipeBytes != 0 || u.PipeBytesPeak != 100 {
		t.Errorf("usage after release = %+v, want 0 live / 100 peak", u)
	}
	if b.Exceeded() == nil {
		t.Error("breach forgotten after release")
	}
}

func TestBudgetFirstBreachWins(t *testing.T) {
	b := NewBudget(JobLimits{MaxPipeMemory: 10, MaxOutputBytes: 10})
	if err := b.ChargePipe(11); err == nil {
		t.Fatal("pipe charge should breach")
	}
	// A later output breach must not re-attribute the failure.
	if err := b.ChargeOutput(11); err == nil {
		t.Fatal("output charge should breach")
	}
	if be := b.Exceeded(); be == nil || be.Resource != "pipe-memory" {
		t.Errorf("first breach not preserved: %+v", be)
	}
	// ...and TripWall reports the frozen breach too.
	if be := b.TripWall(); be.Resource != "pipe-memory" {
		t.Errorf("TripWall re-attributed the breach: %+v", be)
	}
}

func TestBudgetOutputAndWall(t *testing.T) {
	b := NewBudget(JobLimits{MaxOutputBytes: 5})
	if err := b.ChargeOutput(5); err != nil {
		t.Fatal(err)
	}
	err := b.ChargeOutput(1)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "output-bytes" {
		t.Fatalf("output breach = %v", err)
	}

	w := NewBudget(JobLimits{WallTimeout: 1})
	if be := w.TripWall(); be.Resource != "wall-clock" {
		t.Errorf("TripWall = %+v", be)
	}
	if w.Exceeded() == nil {
		t.Error("wall breach not recorded")
	}
}

func TestBudgetCapWidth(t *testing.T) {
	b := NewBudget(JobLimits{MaxProcs: 4})
	for _, tc := range []struct{ in, want int }{{1, 1}, {4, 4}, {8, 4}, {100, 4}} {
		if got := b.CapWidth(tc.in); got != tc.want {
			t.Errorf("CapWidth(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	unlimited := NewBudget(JobLimits{MaxOutputBytes: 1})
	if got := unlimited.CapWidth(8); got != 8 {
		t.Errorf("CapWidth without MaxProcs = %d, want 8", got)
	}
}

func TestLimitWriterBreachFiresOnce(t *testing.T) {
	b := NewBudget(JobLimits{MaxOutputBytes: 10})
	var sink bytes.Buffer
	breaches := 0
	w := LimitWriter(&sink, b, func() { breaches++ })
	if n, err := w.Write([]byte("0123456789")); n != 10 || err != nil {
		t.Fatalf("within-budget write: n=%d err=%v", n, err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Write([]byte("x"))
		}()
	}
	wg.Wait()
	if breaches != 1 {
		t.Errorf("onBreach fired %d times, want exactly once", breaches)
	}
	if sink.String() != "0123456789" {
		t.Errorf("bytes past the budget reached the sink: %q", sink.String())
	}
	if _, err := w.Write([]byte("y")); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("post-breach write error = %v", err)
	}
	// Without an output limit, LimitWriter must not interpose at all.
	plain := &bytes.Buffer{}
	if got := LimitWriter(plain, NewBudget(JobLimits{MaxProcs: 2}), nil); got != plain {
		t.Error("LimitWriter wrapped a writer with no output budget")
	}
	if got := LimitWriter(plain, nil, nil); got != plain {
		t.Error("LimitWriter wrapped a writer with a nil budget")
	}
}

// TestPipeChargesBudget drives a real pooled pipe under a pipe-memory
// budget: queued payload is charged on write and released on read, and
// a writer that outruns the reader breaches.
func TestPipeChargesBudget(t *testing.T) {
	b := NewBudget(JobLimits{MaxPipeMemory: 4 * commands.BlockSize})
	p := newPipe(0)
	p.budget = b
	payload := bytes.Repeat([]byte("x"), commands.BlockSize)
	// Three chunks queued: charged, no breach.
	for i := 0; i < 3; i++ {
		if _, err := p.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if u := b.Usage(); u.PipeBytes == 0 {
		t.Fatalf("queued payload not charged: %+v", u)
	}
	// Drain: the budget comes back.
	buf := make([]byte, len(payload))
	for i := 0; i < 3; i++ {
		if _, err := io.ReadFull(p, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if u := b.Usage(); u.PipeBytes != 0 {
		t.Errorf("drained pipe still holds budget: %+v", u)
	}
	if b.Exceeded() != nil {
		t.Fatalf("breach on a within-budget run: %v", b.Exceeded())
	}
	// Now overfill: writes past the budget must fail with the typed error.
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		_, err = p.Write(payload)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overfilled pipe error = %v, want ErrBudgetExceeded", err)
	}
	p.CloseRead()
	if u := b.Usage(); u.PipeBytes != 0 {
		t.Errorf("CloseRead leaked pipe budget: %+v", u)
	}
}

func TestContainConvertsPanics(t *testing.T) {
	before := Panics().Count
	err := func() (err error) {
		defer Contain("unit test", &err)
		panic("boom-" + strings.Repeat("x", 3))
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("contained panic = %v, want *PanicError", err)
	}
	if pe.Where != "unit test" || !strings.Contains(pe.Value, "boom") {
		t.Errorf("panic error = %+v", pe)
	}
	if !strings.Contains(pe.Stack, "limits_test") {
		t.Errorf("stack does not reach the panic site:\n%s", pe.Stack)
	}
	st := Panics()
	if st.Count != before+1 {
		t.Errorf("panic count %d, want %d", st.Count, before+1)
	}
	found := false
	for _, rec := range st.Recent {
		if rec.Where == "unit test" && strings.Contains(rec.Value, "boom") {
			found = true
		}
	}
	if !found {
		t.Errorf("contained panic missing from the ring: %+v", st.Recent)
	}

	// No panic in flight: the original error survives untouched.
	want := errors.New("ordinary failure")
	got := func() (err error) {
		defer Contain("unit test", &err)
		return want
	}()
	if got != want {
		t.Errorf("Contain replaced a non-panic error: %v", got)
	}
}

func TestPanicRingIsBounded(t *testing.T) {
	for i := 0; i < panicRingSize+5; i++ {
		func() {
			var err error
			defer Contain("ring fill", &err)
			panic(fmt.Sprintf("overflow %d", i))
		}()
	}
	st := Panics()
	if len(st.Recent) > panicRingSize {
		t.Errorf("ring grew past its bound: %d > %d", len(st.Recent), panicRingSize)
	}
	// The ring keeps the most recent entries.
	last := st.Recent[len(st.Recent)-1]
	if last.Value != fmt.Sprintf("overflow %d", panicRingSize+4) {
		t.Errorf("ring tail = %q, want the newest panic", last.Value)
	}
}
