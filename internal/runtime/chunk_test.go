package runtime

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/dfg"
)

// TestChunkPipeStress hammers one pipe with several concurrent chunk
// writers and byte readers at random chunk sizes. Run under -race it
// checks the locking discipline; the byte totals check ownership
// transfer (no chunk lost or double-delivered).
func TestChunkPipeStress(t *testing.T) {
	const writers = 4
	const chunksPerWriter = 200
	p := newPipe(96 * 1024)
	rng := rand.New(rand.NewSource(7))
	sizes := make([][]int, writers)
	var want int64
	for w := range sizes {
		sizes[w] = make([]int, chunksPerWriter)
		for i := range sizes[w] {
			n := rng.Intn(commands.BlockSize + 17) // includes 0 and > BlockSize-ish
			sizes[w][i] = n
			want += int64(n)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, n := range sizes[w] {
				blk := append(commands.GetBlock(), bytes.Repeat([]byte{byte(w + 1)}, n)...)
				if err := p.WriteChunk(blk); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		p.CloseWrite()
	}()

	var got int64
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			buf := make([]byte, 31*1024)
			for {
				n, err := p.Read(buf)
				atomic.AddInt64(&got, int64(n))
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	rg.Wait()
	if got != want {
		t.Fatalf("read %d bytes, wrote %d", got, want)
	}
}

// TestChunkPipeEarlyCloseRead checks the SIGPIPE analog on the chunk
// path: writers racing a CloseRead must all terminate with
// ErrDownstreamClosed and never deadlock.
func TestChunkPipeEarlyCloseRead(t *testing.T) {
	p := newPipe(pipeBufSize)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				blk := append(commands.GetBlock(), make([]byte, 8192)...)
				if err := p.WriteChunk(blk); err != nil {
					if err != ErrDownstreamClosed {
						t.Errorf("unexpected write error: %v", err)
					}
					return
				}
			}
		}()
	}
	// Read a little, then hang up.
	buf := make([]byte, 4096)
	if _, err := p.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	p.CloseRead()
	wg.Wait()
}

// TestChunkPipeFramingTokens checks that zero-length chunks survive the
// chunk path as distinct frames while staying invisible to byte readers.
func TestChunkPipeFramingTokens(t *testing.T) {
	p := newPipe(0)
	payloads := []string{"", "alpha", "", "", "beta", ""}
	for _, s := range payloads {
		blk := append(commands.GetBlock(), s...)
		if err := p.WriteChunk(blk); err != nil {
			t.Fatal(err)
		}
	}
	p.CloseWrite()
	var seen []string
	for {
		b, release, err := p.ReadChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, string(b))
		release()
	}
	if fmt.Sprint(seen) != fmt.Sprint(payloads) {
		t.Errorf("chunk frames = %q, want %q", seen, payloads)
	}

	// Byte readers skip the tokens.
	p2 := newPipe(0)
	for _, s := range payloads {
		if err := p2.WriteChunk(append(commands.GetBlock(), s...)); err != nil {
			t.Fatal(err)
		}
	}
	p2.CloseWrite()
	data, err := io.ReadAll(readEnd{p2})
	if err != nil || string(data) != "alphabeta" {
		t.Errorf("byte view = %q, %v, want %q", data, err, "alphabeta")
	}
}

// rrInputs is the property-test corpus: adversarial shapes including an
// empty input, a final unterminated line, lines longer than a block, and
// pseudo-random text.
func rrInputs() map[string]string {
	rng := rand.New(rand.NewSource(42))
	var random strings.Builder
	for i := 0; i < 4000; i++ {
		n := rng.Intn(120)
		for j := 0; j < n; j++ {
			random.WriteByte(byte('a' + rng.Intn(26)))
		}
		random.WriteByte('\n')
	}
	return map[string]string{
		"empty":        "",
		"one-line":     "solo\n",
		"unterminated": "first\nsecond\nlast without newline",
		"blank-lines":  "\n\n\na\n\n\nb\n\n",
		"long-line":    strings.Repeat("x", 3*commands.BlockSize) + "\nshort\n" + strings.Repeat("y", commands.BlockSize),
		"random":       random.String(),
	}
}

// TestRoundRobinSplitMergeRoundTrip is the core streaming-split
// property: round-robin split into k chunk pipes, reassembled by the
// rotation merge, must reproduce the input byte-identically — including
// a final unterminated line — for every width.
func TestRoundRobinSplitMergeRoundTrip(t *testing.T) {
	for name, input := range rrInputs() {
		for width := 1; width <= 5; width++ {
			streams := make([]*edgeStream, width)
			ws := make([]io.WriteCloser, width)
			rs := make([]io.Reader, width)
			for i := range streams {
				streams[i] = newEdgeStream(true, 0) // unbounded: split runs first
				ws[i] = streams[i].writer()
				rs[i] = streams[i].reader()
			}
			if err := roundRobinSplit(strings.NewReader(input), ws); err != nil {
				t.Fatalf("%s width %d: split: %v", name, width, err)
			}
			var out bytes.Buffer
			if err := commands.MergeChunksRoundRobin(rs, &out); err != nil {
				t.Fatalf("%s width %d: merge: %v", name, width, err)
			}
			if out.String() != input {
				t.Errorf("%s width %d: round trip diverged (%d bytes vs %d)",
					name, width, out.Len(), len(input))
			}
		}
	}
}

// TestRoundRobinGraphMatchesSequential runs `tr a-z A-Z | grep` style
// pipelines through the full transformed graph — streaming round-robin
// split, framed replicas, order-restoring merge — and checks the output
// equals the sequential run on the same adversarial inputs.
func TestRoundRobinGraphMatchesSequential(t *testing.T) {
	mk := func() []*dfg.Node {
		return []*dfg.Node{
			dfg.NewNode(dfg.KindCommand, "tr", []dfg.Arg{dfg.Lit("a-z"), dfg.Lit("A-Z")}, annot.Stateless),
			dfg.NewNode(dfg.KindCommand, "grep", []dfg.Arg{dfg.Lit("-v"), dfg.Lit("^$")}, annot.Stateless),
		}
	}
	for name, input := range rrInputs() {
		seq := execGraph(t, buildPipeline(mk()...), input, Config{})

		g := buildPipeline(mk()...)
		dfg.Apply(g, dfg.Options{Width: 4, Split: true, Eager: dfg.EagerFull})
		rrSplits := 0
		for _, n := range g.Nodes {
			if n.Kind == dfg.KindSplit && n.RoundRobin {
				rrSplits++
			}
		}
		if rrSplits == 0 {
			t.Fatalf("%s: planner did not choose the round-robin split\n%s", name, g.Dump())
		}
		par := execGraph(t, g, input, Config{})
		if par != seq {
			t.Errorf("%s: parallel output diverged from sequential\nseq %d bytes, par %d bytes",
				name, len(seq), len(par))
		}
	}
}

// TestRoundRobinTrafficCounters checks that the bytes/chunks-moved
// meters see the streamed data.
func TestRoundRobinTrafficCounters(t *testing.T) {
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "tr", []dfg.Arg{dfg.Lit("a-z"), dfg.Lit("A-Z")}, annot.Stateless),
	)
	dfg.Apply(g, dfg.Options{Width: 2, Split: true, Eager: dfg.EagerFull})
	var out bytes.Buffer
	input := strings.Repeat("stream me\n", 5000)
	res, err := Execute(context.Background(), g, testRegistry(),
		StdIO{Stdin: strings.NewReader(input), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMoved < int64(len(input)) {
		t.Errorf("BytesMoved = %d, want >= %d", res.BytesMoved, len(input))
	}
	if res.ChunksMoved == 0 {
		t.Error("ChunksMoved = 0, want > 0")
	}
}
