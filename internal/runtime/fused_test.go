package runtime

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/agg"
	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/dfg"
)

func fusedReg() *commands.Registry {
	r := commands.NewStd()
	agg.Install(r)
	return r
}

// buildChainGraph wires stdin -> specs... -> stdout and applies the
// transformations with fusion capability information.
func buildChainGraph(t testing.TB, width int, mode dfg.SplitMode, disableFusion bool, specs ...[2]interface{}) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	var prev *dfg.Node
	for i, spec := range specs {
		name := spec[0].(string)
		var args []dfg.Arg
		for _, a := range spec[1].([]string) {
			args = append(args, dfg.Lit(a))
		}
		n := dfg.NewNode(dfg.KindCommand, name, args, annot.Stateless)
		g.AddNode(n)
		if i == 0 {
			e := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindStdin}, To: n})
			n.In = append(n.In, e)
		} else {
			g.Connect(prev, n)
		}
		n.StdinInput = len(n.In) - 1
		prev = n
	}
	e := g.AddEdge(&dfg.Edge{From: prev, Sink: dfg.Binding{Kind: dfg.BindStdout}})
	prev.Out = append(prev.Out, e)
	dfg.Apply(g, dfg.Options{
		Width: width, Split: width > 1, Eager: dfg.EagerFull, SplitMode: mode,
		KernelCapable: commands.KernelCapable, DisableFusion: disableFusion,
	})
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return g
}

var fusedChain = [][2]interface{}{
	{"tr", []string{"a-z", "A-Z"}},
	{"grep", []string{"-v", "XYZZY"}},
	{"cut", []string{"-d", " ", "-f", "1-2"}},
}

func randomLinesInput(rng *rand.Rand, n int) string {
	var sb strings.Builder
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "xyzzy"}
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(5)
		for j := 0; j < k; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		sb.WriteByte('\n')
	}
	if n > 0 && rng.Intn(2) == 0 {
		sb.WriteString("final unterminated line")
	}
	return sb.String()
}

// TestFusedMatchesUnfusedExecution is the executor-level property test:
// the same fused graph run with the kernel loop and with the pipe-chain
// fallback (Config.DisableFusion) produces identical bytes; so does the
// graph planned without fusion. Covers sequential and framed
// round-robin parallel shapes.
func TestFusedMatchesUnfusedExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		input := randomLinesInput(rng, rng.Intn(5000))
		for _, width := range []int{1, 4} {
			run := func(g *dfg.Graph, cfg Config) string {
				var out bytes.Buffer
				_, err := Execute(context.Background(), g, fusedReg(),
					StdIO{Stdin: strings.NewReader(input), Stdout: &out}, cfg)
				if err != nil {
					t.Fatalf("width %d: %v", width, err)
				}
				return out.String()
			}
			fusedG := buildChainGraph(t, width, dfg.SplitRoundRobin, false, fusedChain...)
			if countFused(fusedG) == 0 {
				t.Fatalf("width %d: no fused nodes planned", width)
			}
			unfusedG := buildChainGraph(t, width, dfg.SplitRoundRobin, true, fusedChain...)
			if countFused(unfusedG) != 0 {
				t.Fatalf("width %d: fusion ran despite DisableFusion", width)
			}

			fused := run(fusedG, Config{})
			fallback := run(buildChainGraph(t, width, dfg.SplitRoundRobin, false, fusedChain...), Config{DisableFusion: true})
			unfused := run(unfusedG, Config{})
			if fused != unfused {
				t.Fatalf("trial %d width %d: fused output diverged from unfused graph\nfused:   %q\nunfused: %q",
					trial, width, clip(fused), clip(unfused))
			}
			if fused != fallback {
				t.Fatalf("trial %d width %d: fused output diverged from runtime fallback", trial, width)
			}
		}
	}
}

func countFused(g *dfg.Graph) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind == dfg.KindFused {
			n++
		}
	}
	return n
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}

// TestFusedExitStatus: a fused node ending in grep propagates grep's
// no-match status as the chain's exit code, matching pipeline
// semantics for the collapsed segment.
func TestFusedExitStatus(t *testing.T) {
	g := buildChainGraph(t, 1, dfg.SplitAuto, false,
		[2]interface{}{"tr", []string{"a-z", "A-Z"}},
		[2]interface{}{"grep", []string{"NOSUCHTOKEN"}},
	)
	var out bytes.Buffer
	res, err := Execute(context.Background(), g, fusedReg(),
		StdIO{Stdin: strings.NewReader("plain text\n"), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Fatalf("exit code %d, want 1 (grep no match)", res.ExitCode)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output %q", out.String())
	}
	// And status 0 when it matches.
	res, err = Execute(context.Background(), g, fusedReg(),
		StdIO{Stdin: strings.NewReader("nosuchtoken here\n"), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit code %d, want 0", res.ExitCode)
	}
}

// TestFusedStageMeters: the fused loop attributes per-stage time and
// byte traffic even though no pipes separate the stages.
func TestFusedStageMeters(t *testing.T) {
	g := buildChainGraph(t, 1, dfg.SplitAuto, false, fusedChain...)
	input := randomLinesInput(rand.New(rand.NewSource(5)), 2000)
	var out bytes.Buffer
	res, err := Execute(context.Background(), g, fusedReg(),
		StdIO{Stdin: strings.NewReader(input), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var fusedTimes []NodeTime
	for _, nt := range res.NodeTimes {
		if len(nt.Stages) > 0 {
			fusedTimes = append(fusedTimes, nt)
		}
	}
	if len(fusedTimes) != 1 {
		t.Fatalf("expected 1 fused node time, got %d", len(fusedTimes))
	}
	st := fusedTimes[0].Stages
	if len(st) != 3 || st[0].Name != "tr" || st[1].Name != "grep" || st[2].Name != "cut" {
		t.Fatalf("stage names wrong: %+v", st)
	}
	if st[0].BytesIn != int64(len(input)) {
		t.Fatalf("tr stage BytesIn = %d, want %d", st[0].BytesIn, len(input))
	}
	if st[1].BytesIn != st[0].BytesOut {
		t.Fatalf("stage byte chain broken: grep in %d != tr out %d", st[1].BytesIn, st[0].BytesOut)
	}
	if st[2].BytesOut != int64(out.Len()) {
		t.Fatalf("cut stage BytesOut = %d, want %d", st[2].BytesOut, out.Len())
	}
}

// countingReader counts bytes served from an endless synthetic stream.
type countingReader struct {
	line   []byte
	max    int64
	served int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	if c.served >= c.max {
		return 0, io.EOF
	}
	n := 0
	for n+len(c.line) <= len(p) && c.served < c.max {
		n += copy(p[n:], c.line)
		c.served += int64(len(c.line))
	}
	if n == 0 {
		n = copy(p, c.line)
		c.served += int64(n)
	}
	return n, nil
}

// TestFusedEarlyExit is the early-exit regression: when a downstream
// head closes its input after one line, the fused chain and the
// round-robin splitter upstream must stop promptly instead of draining
// the whole (large) input.
func TestFusedEarlyExit(t *testing.T) {
	const total = 256 << 20 // far more than anyone should read
	for _, width := range []int{1, 4} {
		src := &countingReader{line: []byte("steady stream of lines\n"), max: total}
		g := dfg.New()
		var prev *dfg.Node
		for _, spec := range fusedChain {
			var args []dfg.Arg
			for _, a := range spec[1].([]string) {
				args = append(args, dfg.Lit(a))
			}
			n := dfg.NewNode(dfg.KindCommand, spec[0].(string), args, annot.Stateless)
			g.AddNode(n)
			if prev == nil {
				e := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindStdin}, To: n})
				n.In = append(n.In, e)
			} else {
				g.Connect(prev, n)
			}
			n.StdinInput = len(n.In) - 1
			prev = n
		}
		head := dfg.NewNode(dfg.KindCommand, "head", []dfg.Arg{dfg.Lit("-n"), dfg.Lit("1")}, annot.Pure)
		g.AddNode(head)
		g.Connect(prev, head)
		head.StdinInput = 0
		e := g.AddEdge(&dfg.Edge{From: head, Sink: dfg.Binding{Kind: dfg.BindStdout}})
		head.Out = append(head.Out, e)
		dfg.Apply(g, dfg.Options{
			Width: width, Split: width > 1, Eager: dfg.EagerNone, SplitMode: dfg.SplitRoundRobin,
			KernelCapable: commands.KernelCapable,
		})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if countFused(g) == 0 {
			t.Fatalf("width %d: chain did not fuse", width)
		}

		var out bytes.Buffer
		res, err := Execute(context.Background(), g, fusedReg(),
			StdIO{Stdin: src, Stdout: &out}, Config{})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("width %d: exit %d", width, res.ExitCode)
		}
		if got := out.String(); got != "STEADY STREAM\n" {
			t.Fatalf("width %d: output %q", width, got)
		}
		read := atomic.LoadInt64(&src.served)
		// Prompt termination: bounded pipes and block granularity allow
		// some run-ahead, but nothing near the full input.
		const slack = 64 << 20
		if read > slack {
			t.Fatalf("width %d: early exit failed: upstream consumed %d bytes (>%d) of %d",
				width, read, int64(slack), int64(total))
		}
		t.Logf("width %d: consumed %s of %s before stopping", width,
			fmt.Sprintf("%.1fMB", float64(read)/(1<<20)), fmt.Sprintf("%dMB", total>>20))
	}
}
