package runtime

import (
	"context"
	"errors"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"
)

func TestSchedulerWidthGrants(t *testing.T) {
	s := NewScheduler(8)
	// A lone region gets everything it asks for (1 + 7 extras).
	w, rel := s.AcquireWidth(8)
	if w != 8 {
		t.Fatalf("first acquire = %d, want 8", w)
	}
	// The first acquire consumed 7 extras; a second concurrent region
	// degrades to the one remaining token + its baseline, not blocking.
	w2, rel2 := s.AcquireWidth(8)
	if w2 != 2 {
		t.Fatalf("contended acquire = %d, want 2", w2)
	}
	rel()
	// Tokens came back: a third region gets full width again.
	w3, rel3 := s.AcquireWidth(4)
	if w3 != 4 {
		t.Fatalf("post-release acquire = %d, want 4", w3)
	}
	rel2()
	rel3()
	st := s.Stats()
	if st.TokensInUse != 0 {
		t.Errorf("tokens leaked: %+v", st)
	}
	if st.WidthAsks != 3 || st.WidthTrims != 1 {
		t.Errorf("width counters = %+v", st)
	}
	// Double release is a no-op.
	rel()
	if got := s.Stats().TokensInUse; got != 0 {
		t.Errorf("double release corrupted pool: %d", got)
	}
}

func TestSchedulerWidthNeverExceedsPool(t *testing.T) {
	s := NewScheduler(4)
	var mu sync.Mutex
	extrasOut := 0
	maxExtras := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				w, rel := s.AcquireWidth(4)
				mu.Lock()
				extrasOut += w - 1
				if extrasOut > maxExtras {
					maxExtras = extrasOut
				}
				mu.Unlock()
				stdruntime.Gosched()
				mu.Lock()
				extrasOut -= w - 1
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if maxExtras > 4 {
		t.Errorf("extras outstanding exceeded pool: %d > 4", maxExtras)
	}
	if st := s.Stats(); st.TokensInUse != 0 {
		t.Errorf("tokens leaked: %+v", st)
	}
}

func TestSchedulerAdmissionBlocksAndReleases(t *testing.T) {
	s := NewScheduler(8)
	s.SetMaxScripts(2)
	rel1, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Third admission blocks until a slot frees.
	entered := make(chan struct{})
	go func() {
		rel3, err := s.Admit(context.Background())
		if err == nil {
			defer rel3()
		}
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("third admission did not block at capacity 2")
	case <-time.After(50 * time.Millisecond):
	}
	rel1()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked admission never unblocked after release")
	}
	rel2()
	st := s.Stats()
	if st.Admitted != 3 || st.Waited < 1 {
		t.Errorf("admission counters = %+v", st)
	}
	if st.ActiveScripts != 0 {
		t.Errorf("active scripts leaked: %+v", st)
	}
}

func TestSchedulerAdmissionRespectsContext(t *testing.T) {
	s := NewScheduler(1)
	s.SetMaxScripts(1)
	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Admit(ctx); err == nil {
		t.Fatal("admission should fail when the context expires")
	}
}

func TestSchedulerShedsWhenQueueFull(t *testing.T) {
	s := NewScheduler(4)
	s.SetMaxScripts(1)
	s.SetAdmissionQueue(2, 0)
	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Fill the admission queue to its bound.
	const waiters = 2
	admitted := make(chan func(), waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			r, err := s.Admit(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			admitted <- r
		}()
	}
	deadline := time.After(5 * time.Second)
	for s.Stats().QueueDepth != waiters {
		select {
		case <-deadline:
			t.Fatalf("waiters never queued: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	// One more admission must shed immediately, typed and matchable.
	_, err = s.Admit(context.Background())
	if !errors.Is(err, ErrAdmissionShed) {
		t.Fatalf("over-queue admission error = %v, want ErrAdmissionShed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "queue-full" {
		t.Errorf("shed = %+v, want queue-full", shed)
	}
	if st := s.Stats(); st.Sheds != 1 || st.QueueDepth != waiters {
		t.Errorf("stats after shed = %+v", st)
	}

	// The queued waiters were not harmed: releasing drains them in turn.
	rel()
	r1 := <-admitted
	r1()
	r2 := <-admitted
	r2()
	if st := s.Stats(); st.ActiveScripts != 0 || st.QueueDepth != 0 {
		t.Errorf("stats after drain = %+v", st)
	}
}

func TestSchedulerShedsOnQueueDeadline(t *testing.T) {
	s := NewScheduler(4)
	s.SetMaxScripts(1)
	s.SetAdmissionQueue(8, 20*time.Millisecond)
	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	start := time.Now()
	_, err = s.Admit(context.Background())
	if !errors.Is(err, ErrAdmissionShed) {
		t.Fatalf("expired admission error = %v, want ErrAdmissionShed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "deadline" {
		t.Errorf("shed = %+v, want deadline", shed)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("deadline shed took %s, bound was 20ms", waited)
	}
	// A caller-side cancellation must NOT be reported as a shed: the
	// client went away, the server did not refuse.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, err = s.Admit(ctx)
	if err == nil || errors.Is(err, ErrAdmissionShed) {
		t.Errorf("caller cancel surfaced as %v, want a plain context error", err)
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Errorf("sheds = %d, want 1 (cancel must not count)", st.Sheds)
	}
}

// TestSchedulerCancelledWhileQueuedReturnsSlot pins the fix for the
// queued-cancel slot leak: when a waiter's context is cancelled at the
// same moment a slot frees, Go's select may deliver the slot — the
// waiter must hand it straight back instead of holding it through a
// doomed execution.
func TestSchedulerCancelledWhileQueuedReturnsSlot(t *testing.T) {
	for round := 0; round < 50; round++ {
		s := NewScheduler(2)
		s.SetMaxScripts(1)
		rel, err := s.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			r, err := s.Admit(ctx)
			if err == nil {
				r()
			}
			done <- err
		}()
		for s.Stats().QueueDepth != 1 {
			time.Sleep(100 * time.Microsecond)
		}
		// Race the release against the cancellation.
		cancel()
		rel()
		<-done
		// Whatever the select picked, the slot must be available again
		// (a leak would block this admission until the timeout).
		probe, pcancel := context.WithTimeout(context.Background(), 2*time.Second)
		got, err := s.Admit(probe)
		pcancel()
		if err != nil {
			t.Fatalf("round %d: slot leaked after queued cancel: %v", round, err)
		}
		got()
	}
}

func TestWidthLeaseDegradesUnderQueueAndRestores(t *testing.T) {
	s := NewScheduler(4)
	s.SetMaxScripts(1)

	// The streaming job holds the only script slot and leases full width.
	release, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lease := s.LeaseWidth(4)
	if w := lease.Width(); w != 4 {
		t.Fatalf("uncontended lease width = %d, want 4", w)
	}
	if st := s.Stats(); st.ActiveLeases != 1 {
		t.Fatalf("active leases = %d, want 1", st.ActiveLeases)
	}

	// A second script queues behind the held slot; the next reassessment
	// must shed the lease's extras down to sequential.
	admitted := make(chan func(), 1)
	go func() {
		rel, err := s.Admit(context.Background())
		if err != nil {
			t.Error(err)
			rel = func() {}
		}
		admitted <- rel
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second admission never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if w := lease.Reassess(); w != 1 {
		t.Fatalf("reassess under queue = %d, want 1", w)
	}
	st := s.Stats()
	if st.LeaseDegrades == 0 {
		t.Errorf("no degrade counted: %+v", st)
	}
	// The shed tokens are free for the queued script's regions.
	if w, rel := s.AcquireWidth(4); w != 4 {
		t.Errorf("shed tokens not returned: acquire = %d, want 4", w)
	} else {
		rel()
	}

	// Queue drains: the lease regrows toward its ask.
	release()
	rel2 := <-admitted
	rel2()
	if w := lease.Reassess(); w != 4 {
		t.Fatalf("reassess after drain = %d, want 4", w)
	}
	if st := s.Stats(); st.LeaseRestores == 0 {
		t.Errorf("no restore counted: %+v", st)
	}

	// Release is idempotent and returns every token.
	lease.Release()
	lease.Release()
	st = s.Stats()
	if st.TokensInUse != 0 || st.ActiveLeases != 0 {
		t.Errorf("lease leaked tokens: %+v", st)
	}
	if w := lease.Reassess(); w != 1 {
		t.Errorf("reassess after release = %d, want 1", w)
	}
}

// A quiet tenant's admission must not queue behind a noisy tenant's
// backlog: freed slots rotate round-robin across keys, so the quiet
// waiter is granted within the first two grants no matter how deep the
// noisy queue is (structural head-of-line regression).
func TestSchedulerRoundRobinAcrossKeys(t *testing.T) {
	s := NewScheduler(4)
	s.SetMaxScripts(1)
	occupy, err := s.AdmitKey(context.Background(), "noisy")
	if err != nil {
		t.Fatal(err)
	}

	const backlog = 40
	type grant struct {
		key string
		rel func()
	}
	grants := make(chan grant, backlog+1)
	var wg sync.WaitGroup
	enqueue := func(key string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.AdmitKey(context.Background(), key)
			if err != nil {
				t.Errorf("AdmitKey(%s): %v", key, err)
				return
			}
			grants <- grant{key, rel}
		}()
		// Each waiter must be queued before the next enqueues so the
		// noisy backlog is strictly ahead of the quiet waiter.
		waitForQueued(t, s, func(n int64) bool { return n >= 1 })
	}
	start := s.queued.Load()
	for i := 0; i < backlog; i++ {
		enqueue("noisy")
	}
	waitForQueued(t, s, func(n int64) bool { return n-start >= backlog })
	enqueue("quiet")
	waitForQueued(t, s, func(n int64) bool { return n-start >= backlog+1 })

	// Release the slot and drain grants one at a time: the quiet tenant
	// must be granted first or second (round-robin alternates keys),
	// never behind the 40-deep noisy backlog.
	occupy()
	quietAt := 0
	for i := 1; i <= backlog+1; i++ {
		g := <-grants
		if g.key == "quiet" {
			quietAt = i
		}
		g.rel()
	}
	wg.Wait()
	if quietAt == 0 || quietAt > 2 {
		t.Fatalf("quiet tenant granted at position %d, want <= 2", quietAt)
	}
}

// waitForQueued polls the queue depth until cond holds (the enqueue
// happens inside a goroutine; there is no other join point).
func waitForQueued(t *testing.T, s *Scheduler, cond func(int64) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(s.queued.Load()) {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached target (now %d)", s.queued.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Timing companion to the structural test: while a noisy tenant keeps
// a deep backlog queued, a quiet tenant's admission waits are bounded
// by ~one slot-hold time, not by the backlog length. Bounds are
// generous (CI-safe) — the FIFO behaviour this regresses against would
// wait tens of holds, two orders of magnitude past the assert.
func TestSchedulerQuietTenantWaitBounded(t *testing.T) {
	const hold = 2 * time.Millisecond
	s := NewScheduler(4)
	s.SetMaxScripts(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Noisy tenant: keep ~30 admissions queued at all times, each
	// holding the slot when granted.
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel, err := s.AdmitKey(context.Background(), "noisy")
				if err != nil {
					return
				}
				time.Sleep(hold)
				rel()
			}
		}()
	}
	waitForQueued(t, s, func(n int64) bool { return n >= 10 })

	// Quiet tenant: sequential admissions, measuring each wait.
	var worst time.Duration
	for i := 0; i < 20; i++ {
		begin := time.Now()
		rel, err := s.AdmitKey(context.Background(), "quiet")
		waited := time.Since(begin)
		if err != nil {
			t.Fatalf("quiet admission %d: %v", i, err)
		}
		rel()
		if waited > worst {
			worst = waited
		}
	}
	close(stop)
	wg.Wait()
	// Round-robin bounds the quiet wait near one hold (plus scheduling
	// noise); strict FIFO behind a 30-deep backlog would be >= 30*hold.
	if limit := 15 * hold; worst > limit {
		t.Fatalf("quiet tenant worst admission wait %v exceeds %v (head-of-line starvation)", worst, limit)
	}
}

// EstimateWait derives the Retry-After hint from live state: clamped
// to the 1s floor when idle or unmeasured, and growing with queue
// depth once slot-hold times are known.
func TestSchedulerEstimateWait(t *testing.T) {
	s := NewScheduler(4)
	s.SetMaxScripts(1)
	if got := s.EstimateWait(); got != time.Second {
		t.Fatalf("idle EstimateWait = %v, want the 1s floor", got)
	}
	// Feed the EWMA a known hold time, then pile up queued work.
	s.holdEWMA.Store(int64(10 * time.Second))
	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	cancels := make([]context.CancelFunc, 0, 5)
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := s.AdmitKey(ctx, "t"); err == nil {
				r()
			}
		}()
	}
	waitForQueued(t, s, func(n int64) bool { return n >= 5 })
	// 5 queued + 1 active + 1 = 7 ahead, one slot, 10s hold each.
	if got, want := s.EstimateWait(), 70*time.Second; got != want {
		t.Fatalf("loaded EstimateWait = %v, want %v", got, want)
	}
	rel()
	for _, c := range cancels {
		c()
	}
	wg.Wait()
	st := s.Stats()
	if st.EstWait <= 0 || st.HoldEWMA <= 0 {
		t.Fatalf("stats missing wait-estimate fields: %+v", st)
	}
}

// The PR-7 queued-cancel regression, extended across admission keys: a
// keyed waiter whose cancellation races its grant must hand the slot
// back to the next key's waiter, never strand it.
func TestSchedulerKeyedCancelReturnsSlot(t *testing.T) {
	s := NewScheduler(4)
	s.SetMaxScripts(1)
	for round := 0; round < 50; round++ {
		rel, err := s.AdmitKey(context.Background(), "a")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		racedDone := make(chan struct{})
		go func() {
			defer close(racedDone)
			if r, err := s.AdmitKey(ctx, "b"); err == nil {
				r()
			}
		}()
		waitForQueued(t, s, func(n int64) bool { return n >= 1 })
		// Race the grant against the cancellation.
		go rel()
		cancel()
		<-racedDone
		// Whatever won, the slot must be whole again: a third keyed
		// admission succeeds immediately.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		rel3, err := s.AdmitKey(ctx2, "c")
		cancel2()
		if err != nil {
			t.Fatalf("round %d: slot stranded after racing cancel: %v", round, err)
		}
		rel3()
	}
}
