package runtime

import (
	"context"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"
)

func TestSchedulerWidthGrants(t *testing.T) {
	s := NewScheduler(8)
	// A lone region gets everything it asks for (1 + 7 extras).
	w, rel := s.AcquireWidth(8)
	if w != 8 {
		t.Fatalf("first acquire = %d, want 8", w)
	}
	// The first acquire consumed 7 extras; a second concurrent region
	// degrades to the one remaining token + its baseline, not blocking.
	w2, rel2 := s.AcquireWidth(8)
	if w2 != 2 {
		t.Fatalf("contended acquire = %d, want 2", w2)
	}
	rel()
	// Tokens came back: a third region gets full width again.
	w3, rel3 := s.AcquireWidth(4)
	if w3 != 4 {
		t.Fatalf("post-release acquire = %d, want 4", w3)
	}
	rel2()
	rel3()
	st := s.Stats()
	if st.TokensInUse != 0 {
		t.Errorf("tokens leaked: %+v", st)
	}
	if st.WidthAsks != 3 || st.WidthTrims != 1 {
		t.Errorf("width counters = %+v", st)
	}
	// Double release is a no-op.
	rel()
	if got := s.Stats().TokensInUse; got != 0 {
		t.Errorf("double release corrupted pool: %d", got)
	}
}

func TestSchedulerWidthNeverExceedsPool(t *testing.T) {
	s := NewScheduler(4)
	var mu sync.Mutex
	extrasOut := 0
	maxExtras := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				w, rel := s.AcquireWidth(4)
				mu.Lock()
				extrasOut += w - 1
				if extrasOut > maxExtras {
					maxExtras = extrasOut
				}
				mu.Unlock()
				stdruntime.Gosched()
				mu.Lock()
				extrasOut -= w - 1
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if maxExtras > 4 {
		t.Errorf("extras outstanding exceeded pool: %d > 4", maxExtras)
	}
	if st := s.Stats(); st.TokensInUse != 0 {
		t.Errorf("tokens leaked: %+v", st)
	}
}

func TestSchedulerAdmissionBlocksAndReleases(t *testing.T) {
	s := NewScheduler(8)
	s.SetMaxScripts(2)
	rel1, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Third admission blocks until a slot frees.
	entered := make(chan struct{})
	go func() {
		rel3, err := s.Admit(context.Background())
		if err == nil {
			defer rel3()
		}
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("third admission did not block at capacity 2")
	case <-time.After(50 * time.Millisecond):
	}
	rel1()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked admission never unblocked after release")
	}
	rel2()
	st := s.Stats()
	if st.Admitted != 3 || st.Waited < 1 {
		t.Errorf("admission counters = %+v", st)
	}
	if st.ActiveScripts != 0 {
		t.Errorf("active scripts leaked: %+v", st)
	}
}

func TestSchedulerAdmissionRespectsContext(t *testing.T) {
	s := NewScheduler(1)
	s.SetMaxScripts(1)
	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Admit(ctx); err == nil {
		t.Fatal("admission should fail when the context expires")
	}
}
