package runtime

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"testing"

	"repro/internal/dfg"
)

// benchFusionInput builds ~8 MiB of multi-field lines with mixed case,
// about half of which survive the grep stage.
func benchFusionInput() []byte {
	var sb bytes.Buffer
	i := 0
	for sb.Len() < 8<<20 {
		marker := "chaff"
		if i%2 == 0 {
			marker = "Signal"
		}
		fmt.Fprintf(&sb, "field%d %s Payload-%d alpha beta gamma delta epsilon zeta eta theta\n", i%97, marker, i)
		i++
	}
	return sb.Bytes()
}

// BenchmarkFusion is the tentpole's acceptance benchmark: a 3-stage
// stateless chain (tr | grep | cut) executed as three goroutines with
// two chunk pipes (unfused) versus one goroutine running the composed
// kernels in place (fused). The bar is fused >= 2x unfused throughput.
//
//	fused    — fusion planned and executed (the default configuration)
//	unfused  — fusion disabled at planning: the pre-fusion graph
//	fallback — fused graph, kernel loop disabled at execution
//	           (Config.DisableFusion): isolates planning from execution
func BenchmarkFusion(b *testing.B) {
	input := benchFusionInput()
	chain := [][2]interface{}{
		{"tr", []string{"A-Z", "a-z"}},
		{"grep", []string{"signal"}},
		{"cut", []string{"-d", " ", "-f", "2,4-6"}},
	}
	reg := fusedReg()

	run := func(b *testing.B, disablePlan bool, cfg Config) {
		b.SetBytes(int64(len(input)))
		var out int64
		for i := 0; i < b.N; i++ {
			g := buildChainGraph(b, 1, dfg.SplitAuto, disablePlan, chain...)
			counter := &countWriter{}
			_, err := Execute(context.Background(), g, reg,
				StdIO{Stdin: bytes.NewReader(input), Stdout: counter}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			out = counter.n
		}
		if out == 0 {
			b.Fatal("benchmark produced no output")
		}
	}

	b.Run("fused", func(b *testing.B) { run(b, false, Config{}) })
	b.Run("unfused", func(b *testing.B) { run(b, true, Config{}) })
	b.Run("fallback", func(b *testing.B) { run(b, false, Config{DisableFusion: true}) })
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// BenchmarkFusedWidth sweeps the framed round-robin shape: split ->
// width x fused(tr|grep|cut) -> merge, fused vs unfused, showing the
// orchestration saving grow with width (3w goroutines and 2w pipes
// collapse to w goroutines).
func BenchmarkFusedWidth(b *testing.B) {
	input := benchFusionInput()[:4<<20]
	chain := [][2]interface{}{
		{"tr", []string{"A-Z", "a-z"}},
		{"grep", []string{"signal"}},
		{"cut", []string{"-d", " ", "-f", "2,4-6"}},
	}
	reg := fusedReg()
	for _, width := range []int{4, 16} {
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"fused", false}, {"unfused", true}} {
			b.Run(fmt.Sprintf("w%d-%s", width, mode.name), func(b *testing.B) {
				b.SetBytes(int64(len(input)))
				for i := 0; i < b.N; i++ {
					g := buildChainGraph(b, width, dfg.SplitRoundRobin, mode.disable, chain...)
					_, err := Execute(context.Background(), g, reg,
						StdIO{Stdin: bytes.NewReader(input), Stdout: io.Discard}, Config{})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
