package runtime

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/dfg"
)

func testRegistry() *commands.Registry {
	r := commands.NewStd()
	agg.Install(r)
	return r
}

// buildPipeline constructs stdin -> nodes... -> stdout.
func buildPipeline(nodes ...*dfg.Node) *dfg.Graph {
	g := dfg.New()
	var prev *dfg.Node
	for i, n := range nodes {
		g.AddNode(n)
		if i == 0 {
			e := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindStdin}, To: n})
			n.In = append(n.In, e)
			n.StdinInput = 0
		} else {
			g.Connect(prev, n)
			n.StdinInput = len(n.In) - 1
		}
		prev = n
	}
	e := g.AddEdge(&dfg.Edge{From: prev, Sink: dfg.Binding{Kind: dfg.BindStdout}})
	prev.Out = append(prev.Out, e)
	return g
}

func execGraph(t *testing.T, g *dfg.Graph, stdin string, cfg Config) string {
	t.Helper()
	var out bytes.Buffer
	res, err := Execute(context.Background(), g, testRegistry(),
		StdIO{Stdin: strings.NewReader(stdin), Stdout: &out}, cfg)
	if err != nil {
		t.Fatalf("Execute: %v\n%s", err, g.Dump())
	}
	_ = res
	return out.String()
}

func TestExecuteSimplePipeline(t *testing.T) {
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "grep", []dfg.Arg{dfg.Lit("a")}, annot.Stateless),
		dfg.NewNode(dfg.KindCommand, "tr", []dfg.Arg{dfg.Lit("a-z"), dfg.Lit("A-Z")}, annot.Stateless),
	)
	got := execGraph(t, g, "apple\nberry\navocado\n", Config{})
	if got != "APPLE\nAVOCADO\n" {
		t.Errorf("pipeline = %q", got)
	}
}

func TestExecuteTransformedStateless(t *testing.T) {
	for _, eager := range []dfg.EagerMode{dfg.EagerNone, dfg.EagerBlocking, dfg.EagerFull} {
		g := buildPipeline(
			dfg.NewNode(dfg.KindCommand, "grep", []dfg.Arg{dfg.Lit("a")}, annot.Stateless),
			dfg.NewNode(dfg.KindCommand, "tr", []dfg.Arg{dfg.Lit("a-z"), dfg.Lit("A-Z")}, annot.Stateless),
		)
		dfg.Apply(g, dfg.Options{Width: 4, Split: true, Eager: eager})
		cfg := Config{}
		if eager == dfg.EagerBlocking {
			cfg.BlockingEager = 1 << 20
		}
		got := execGraph(t, g, "apple\nberry\navocado\nbanana\ncherry\napricot\n", cfg)
		if got != "APPLE\nAVOCADO\nBANANA\nAPRICOT\n" {
			t.Errorf("eager=%v: parallel pipeline = %q", eager, got)
		}
	}
}

func TestExecuteMapAggregate(t *testing.T) {
	sortNode := dfg.NewNode(dfg.KindCommand, "sort", []dfg.Arg{dfg.Lit("-rn")}, annot.Pure)
	sortNode.Agg = &dfg.AggSpec{
		MapName: "sort", MapArgs: []string{"-rn"},
		AggName: "sort", AggArgs: []string{"-m", "-rn"},
	}
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "grep", []dfg.Arg{dfg.Lit("[0-9]")}, annot.Stateless),
		sortNode,
	)
	dfg.Apply(g, dfg.Options{Width: 3, Split: true, Eager: dfg.EagerFull})
	got := execGraph(t, g, "5\n3\n9\n1\n7\n2\n8\n", Config{})
	if got != "9\n8\n7\n5\n3\n2\n1\n" {
		t.Errorf("map/agg sort = %q", got)
	}
}

func TestExecuteFileInputAndOutput(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "in.txt"), []byte("b\na\nc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := dfg.New()
	n := dfg.NewNode(dfg.KindCommand, "sort", nil, annot.Pure)
	g.AddNode(n)
	in := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindFile, Path: "in.txt"}, To: n})
	n.In = append(n.In, in)
	n.StdinInput = 0
	out := g.AddEdge(&dfg.Edge{From: n, Sink: dfg.Binding{Kind: dfg.BindFile, Path: "out.txt"}})
	n.Out = append(n.Out, out)

	if _, err := Execute(context.Background(), g, testRegistry(), StdIO{}, Config{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\nb\nc\n" {
		t.Errorf("out.txt = %q", data)
	}
}

func TestInputAwareFileSplit(t *testing.T) {
	dir := t.TempDir()
	var content strings.Builder
	for i := 0; i < 1000; i++ {
		content.WriteString(strings.Repeat("w", i%13+1))
		content.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "in.txt"), []byte(content.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, aware := range []bool{false, true} {
		g := dfg.New()
		n := dfg.NewNode(dfg.KindCommand, "wc", []dfg.Arg{dfg.Lit("-l")}, annot.Pure)
		n.Agg = &dfg.AggSpec{MapName: "wc", MapArgs: []string{"-l"}, AggName: "pash-agg-wc", AggArgs: []string{"-l"}}
		g.AddNode(n)
		in := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindFile, Path: "in.txt"}, To: n})
		n.In = append(n.In, in)
		n.StdinInput = 0
		out := g.AddEdge(&dfg.Edge{From: n, Sink: dfg.Binding{Kind: dfg.BindStdout}})
		n.Out = append(n.Out, out)
		dfg.Apply(g, dfg.Options{Width: 4, Split: true, Eager: dfg.EagerFull})

		var buf bytes.Buffer
		_, err := Execute(context.Background(), g, testRegistry(),
			StdIO{Stdout: &buf}, Config{Dir: dir, InputAwareSplit: aware})
		if err != nil {
			t.Fatalf("aware=%v: %v", aware, err)
		}
		if got := strings.TrimSpace(buf.String()); got != "1000" {
			t.Errorf("aware=%v: wc -l = %q, want 1000", aware, got)
		}
	}
}

func TestEarlyConsumerExitTerminatesProducers(t *testing.T) {
	// seq-like infinite producer: yes | head -n 3 must terminate.
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "yes", []dfg.Arg{dfg.Lit("hi")}, annot.SideEffectful),
		dfg.NewNode(dfg.KindCommand, "head", []dfg.Arg{dfg.Lit("-n"), dfg.Lit("3")}, annot.Pure),
	)
	got := execGraph(t, g, "", Config{})
	if got != "hi\nhi\nhi\n" {
		t.Errorf("yes | head -n 3 = %q", got)
	}
}

func TestHeadOverParallelStages(t *testing.T) {
	// The §5.2 dangling-FIFO scenario: a parallel stage feeding a cat
	// feeding head; head exits before ever opening later inputs.
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "tr", []dfg.Arg{dfg.Lit("a-z"), dfg.Lit("A-Z")}, annot.Stateless),
		dfg.NewNode(dfg.KindCommand, "head", []dfg.Arg{dfg.Lit("-n"), dfg.Lit("1")}, annot.Pure),
	)
	dfg.Apply(g, dfg.Options{Width: 4, Split: true, Eager: dfg.EagerFull})
	var in strings.Builder
	for i := 0; i < 10000; i++ {
		in.WriteString("line\n")
	}
	got := execGraph(t, g, in.String(), Config{})
	if got != "LINE\n" {
		t.Errorf("head over parallel stages = %q", got)
	}
}

func TestMultiInputCat(t *testing.T) {
	dir := t.TempDir()
	must(t, os.WriteFile(filepath.Join(dir, "f1"), []byte("one\n"), 0o644))
	must(t, os.WriteFile(filepath.Join(dir, "f2"), []byte("two\n"), 0o644))
	g := dfg.New()
	n := dfg.NewNode(dfg.KindCat, "cat", []dfg.Arg{dfg.InArg(0), dfg.InArg(1)}, annot.Stateless)
	g.AddNode(n)
	for _, f := range []string{"f1", "f2"} {
		e := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindFile, Path: f}, To: n})
		n.In = append(n.In, e)
	}
	out := g.AddEdge(&dfg.Edge{From: n, Sink: dfg.Binding{Kind: dfg.BindStdout}})
	n.Out = append(n.Out, out)

	var buf bytes.Buffer
	if _, err := Execute(context.Background(), g, testRegistry(), StdIO{Stdout: &buf}, Config{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "one\ntwo\n" {
		t.Errorf("cat f1 f2 = %q", buf.String())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipeSemantics(t *testing.T) {
	p := newPipe(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// 16 bytes through an 8-byte pipe requires concurrent reading.
		if _, err := p.Write(bytes.Repeat([]byte("x"), 16)); err != nil {
			t.Errorf("write: %v", err)
		}
		p.CloseWrite()
	}()
	buf, err := io.ReadAll(readEnd{p})
	if err != nil || len(buf) != 16 {
		t.Fatalf("read: %d bytes, %v", len(buf), err)
	}
	<-done
}

func TestPipeDownstreamClosed(t *testing.T) {
	p := newPipe(4)
	p.CloseRead()
	if _, err := p.Write([]byte("data")); err != ErrDownstreamClosed {
		t.Errorf("write after CloseRead: %v, want ErrDownstreamClosed", err)
	}
}

func TestUnboundedPipeNeverBlocks(t *testing.T) {
	p := newPipe(0)
	// A megabyte of writes with no reader must not block.
	for i := 0; i < 1024; i++ {
		if _, err := p.Write(bytes.Repeat([]byte("y"), 1024)); err != nil {
			t.Fatal(err)
		}
	}
	p.CloseWrite()
	data, err := io.ReadAll(readEnd{p})
	if err != nil || len(data) != 1<<20 {
		t.Fatalf("read back %d bytes, %v", len(data), err)
	}
}

func TestExitCodePropagation(t *testing.T) {
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "grep", []dfg.Arg{dfg.Lit("nomatch")}, annot.Stateless),
	)
	var out bytes.Buffer
	res, err := Execute(context.Background(), g, testRegistry(),
		StdIO{Stdin: strings.NewReader("abc\n"), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Errorf("exit code = %d, want 1 (grep no match)", res.ExitCode)
	}
}

func TestFileSplitAlignment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	content := "aa\nbbbb\nc\ndddddd\ne\n"
	must(t, os.WriteFile(path, []byte(content), 0o644))
	for width := 1; width <= 6; width++ {
		streams := make([]*edgeStream, width)
		ws := make([]io.WriteCloser, width)
		for i := range ws {
			streams[i] = newEdgeStream(true, 0)
			ws[i] = streams[i].writer()
		}
		if err := fileSplit(path, ws); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		var all strings.Builder
		for _, s := range streams {
			data, err := io.ReadAll(s.reader())
			if err != nil {
				t.Fatal(err)
			}
			chunk := string(data)
			if chunk != "" && !strings.HasSuffix(chunk, "\n") {
				t.Errorf("width %d: chunk %q not newline-terminated", width, chunk)
			}
			all.WriteString(chunk)
		}
		if all.String() != content {
			t.Errorf("width %d: reassembled %q != original", width, all.String())
		}
	}
}
