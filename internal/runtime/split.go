package runtime

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/commands"
)

// This file implements the two split strategies of §5.2:
//
//   - generalSplit consumes its complete input, counts lines, and then
//     distributes them evenly — correct for any upstream producer, but a
//     task-parallelism barrier.
//   - fileSplit (the "input-aware" variant) knows its input is a regular
//     file of known size: it seeks to newline-aligned byte offsets and
//     streams each chunk concurrently, never reading the input twice.

// generalSplit reads everything from r, then writes line-balanced chunks
// to the writers in order.
func generalSplit(r io.Reader, ws []io.WriteCloser) error {
	lines, err := commands.ReadAllLines(r)
	if err != nil {
		closeAll(ws)
		return err
	}
	n := len(ws)
	per := (len(lines) + n - 1) / n
	idx := 0
	for i, w := range ws {
		bw := bufio.NewWriterSize(w, 64*1024)
		for j := 0; j < per && idx < len(lines); j++ {
			if _, err := bw.Write(lines[idx]); err != nil {
				if err == ErrDownstreamClosed {
					break
				}
				closeAll(ws[i:])
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				break
			}
			idx++
		}
		if err := bw.Flush(); err != nil && err != ErrDownstreamClosed {
			closeAll(ws[i:])
			return err
		}
		w.Close()
	}
	return nil
}

// fileSplit divides the file [path] into len(ws) byte ranges aligned to
// line boundaries and streams each range to its writer concurrently.
// Alignment rule: each chunk starts right after the first newline at or
// before its nominal offset (chunk 0 starts at 0), so every line lands in
// exactly one chunk.
func fileSplit(path string, ws []io.WriteCloser) error {
	f, err := os.Open(path)
	if err != nil {
		closeAll(ws)
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		closeAll(ws)
		return err
	}
	size := st.Size()
	f.Close()
	n := int64(len(ws))
	nominal := make([]int64, n+1)
	for i := int64(0); i <= n; i++ {
		nominal[i] = size * i / n
	}
	// Align offsets to line starts.
	starts := make([]int64, n+1)
	starts[0] = 0
	starts[n] = size
	for i := int64(1); i < n; i++ {
		off, err := alignToLineStart(path, nominal[i])
		if err != nil {
			closeAll(ws)
			return err
		}
		starts[i] = off
	}
	errc := make(chan error, n)
	for i := int64(0); i < n; i++ {
		go func(lo, hi int64, w io.WriteCloser) {
			errc <- streamRange(path, lo, hi, w)
		}(starts[i], starts[i+1], ws[i])
	}
	var first error
	for i := int64(0); i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// alignToLineStart finds the first byte position >= off that begins a
// line (position 0 or one past a newline), scanning forward.
func alignToLineStart(path string, off int64) (int64, error) {
	if off == 0 {
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(off-1, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReader(f)
	// Scan until the next newline; the line start is one past it.
	skipped := int64(0)
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			return off + skipped, nil
		}
		if err != nil {
			return 0, err
		}
		skipped++
		if b == '\n' {
			return off - 1 + skipped, nil
		}
	}
}

func streamRange(path string, lo, hi int64, w io.WriteCloser) error {
	defer w.Close()
	if hi <= lo {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(lo, io.SeekStart); err != nil {
		return err
	}
	_, err = io.CopyN(w, f, hi-lo)
	if err == ErrDownstreamClosed || err == io.EOF {
		return nil
	}
	return err
}

func closeAll(ws []io.WriteCloser) {
	for _, w := range ws {
		w.Close()
	}
}

// splitError annotates split failures with the node for diagnostics.
func splitError(nodeID int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("runtime: split node #%d: %w", nodeID, err)
}
