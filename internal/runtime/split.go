package runtime

import (
	"fmt"
	"io"
	"os"

	"repro/internal/commands"
)

// This file implements the three split strategies (§5.2 Splitting
// Challenges, plus the streaming refinement this reproduction adds):
//
//   - generalSplit consumes its complete input, counts lines, and then
//     distributes them evenly — correct for any upstream producer and any
//     consumer, but a task-parallelism barrier with O(input) memory.
//   - fileSplit (the "input-aware" variant) knows its input is a regular
//     file of known size: it seeks to newline-aligned byte offsets and
//     streams each chunk concurrently, never reading the input twice.
//   - roundRobinSplit streams ~64 KiB newline-aligned blocks and deals
//     them to consumers as they arrive: no full-input barrier, O(1)
//     memory, first block flowing downstream as soon as it is read. Its
//     outputs interleave the input, so it is only used where the planner
//     paired it with framed consumers and a pash-rr-merge that restores
//     byte order (see internal/dfg/transform.go).

// generalSplit reads everything from r, then writes line-balanced chunks
// to the writers in order.
func generalSplit(r io.Reader, ws []io.WriteCloser) error {
	lines, err := commands.ReadAllLines(r)
	if err != nil {
		closeAll(ws)
		return err
	}
	n := len(ws)
	per := (len(lines) + n - 1) / n
	idx := 0
	for i, w := range ws {
		lw := commands.NewLineWriter(w)
		for j := 0; j < per && idx < len(lines); j++ {
			if err := lw.WriteLine(lines[idx]); err != nil {
				if err == ErrDownstreamClosed {
					break
				}
				closeAll(ws[i:])
				return err
			}
			idx++
		}
		if err := lw.Flush(); err != nil && err != ErrDownstreamClosed {
			closeAll(ws[i:])
			return err
		}
		w.Close()
	}
	return nil
}

// roundRobinSplit streams newline-aligned blocks from r, transferring
// ownership of block k to ws[k mod len(ws)]. Consumers start receiving
// data after the first block read — the split is no longer a pipeline
// barrier — and memory stays O(blocks in flight). Writers that close
// early (SIGPIPE analog) drop out of the rotation; the rotation position
// still advances past them so surviving streams keep their frame
// arithmetic.
func roundRobinSplit(r io.Reader, ws []io.WriteCloser) error {
	n := len(ws)
	closed := make([]bool, n)
	alive := n
	k := 0
	err := commands.EachLineBlock(r, func(block []byte) error {
		i := k % n
		k++
		if closed[i] {
			commands.PutBlock(block)
			return nil
		}
		werr := writeChunkTo(ws[i], block)
		if werr == ErrDownstreamClosed {
			closed[i] = true
			if alive--; alive == 0 {
				return ErrDownstreamClosed
			}
			return nil
		}
		return werr
	})
	closeAll(ws)
	if err == ErrDownstreamClosed {
		// Every consumer hung up: clean termination, like a command
		// killed by SIGPIPE.
		return nil
	}
	return err
}

// writeChunkTo hands block ownership to w, copying only when w does not
// speak the chunk protocol.
func writeChunkTo(w io.Writer, block []byte) error {
	if cw, ok := w.(commands.ChunkWriter); ok {
		return cw.WriteChunk(block)
	}
	_, err := w.Write(block)
	commands.PutBlock(block)
	return err
}

// fileSplit divides the file [path] into len(ws) byte ranges aligned to
// line boundaries and streams each range to its writer concurrently.
// Alignment rule: each chunk starts right after the first newline at or
// before its nominal offset (chunk 0 starts at 0), so every line lands in
// exactly one chunk. A single file descriptor serves both the alignment
// probes and the concurrent range reads (ReadAt is goroutine-safe).
func fileSplit(path string, ws []io.WriteCloser) error {
	f, err := os.Open(path)
	if err != nil {
		closeAll(ws)
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		closeAll(ws)
		return err
	}
	size := st.Size()
	n := int64(len(ws))
	nominal := make([]int64, n+1)
	for i := int64(0); i <= n; i++ {
		nominal[i] = size * i / n
	}
	// Align offsets to line starts.
	starts := make([]int64, n+1)
	starts[0] = 0
	starts[n] = size
	for i := int64(1); i < n; i++ {
		off, err := alignToLineStart(f, nominal[i])
		if err != nil {
			closeAll(ws)
			return err
		}
		starts[i] = off
	}
	errc := make(chan error, n)
	for i := int64(0); i < n; i++ {
		go func(lo, hi int64, w io.WriteCloser) {
			errc <- func() (err error) {
				defer Contain("split range writer", &err)
				return streamRange(f, lo, hi, w)
			}()
		}(starts[i], starts[i+1], ws[i])
	}
	var first error
	for i := int64(0); i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// alignToLineStart finds the first byte position >= off that begins a
// line (position 0 or one past a newline), scanning forward with ReadAt
// on the already-open file.
func alignToLineStart(f *os.File, off int64) (int64, error) {
	if off == 0 {
		return 0, nil
	}
	buf := make([]byte, 4096)
	pos := off - 1 // include the byte before off: it may be the newline
	for {
		n, err := f.ReadAt(buf, pos)
		for i := 0; i < n; i++ {
			if buf[i] == '\n' {
				return pos + int64(i) + 1, nil
			}
		}
		pos += int64(n)
		if err == io.EOF {
			return pos, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// streamRange copies f[lo:hi) to w in pooled blocks, transferring block
// ownership when w speaks the chunk protocol. ReadAt keeps the shared
// descriptor position-independent across the concurrent ranges.
func streamRange(f *os.File, lo, hi int64, w io.WriteCloser) error {
	defer w.Close()
	pos := lo
	for pos < hi {
		want := hi - pos
		if want > commands.BlockSize {
			want = commands.BlockSize
		}
		block := commands.GetBlock()
		n, err := f.ReadAt(block[:want], pos)
		if n > 0 {
			pos += int64(n)
			if werr := writeChunkTo(w, block[:n]); werr != nil {
				if werr == ErrDownstreamClosed {
					return nil
				}
				return werr
			}
		} else {
			commands.PutBlock(block)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func closeAll(ws []io.WriteCloser) {
	for _, w := range ws {
		w.Close()
	}
}

// splitError annotates split failures with the node for diagnostics.
func splitError(nodeID int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("runtime: split node #%d: %w", nodeID, err)
}
