package runtime

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/annot"
	"repro/internal/dfg"
)

func TestProfileMatchesExecute(t *testing.T) {
	build := func() *dfg.Graph {
		g := buildPipeline(
			dfg.NewNode(dfg.KindCommand, "grep", []dfg.Arg{dfg.Lit("a")}, annot.Stateless),
			dfg.NewNode(dfg.KindCommand, "sort", nil, annot.Pure),
		)
		dfg.Apply(g, dfg.Options{Width: 4, Split: true, Eager: dfg.EagerFull,
			AggResolver: nil})
		return g
	}
	in := "banana\napple\navocado\ncherry\nfig\napricot\n"
	var normal, profiled bytes.Buffer
	if _, err := Execute(context.Background(), build(), testRegistry(),
		StdIO{Stdin: strings.NewReader(in), Stdout: &normal}, Config{}); err != nil {
		t.Fatal(err)
	}
	res, err := Profile(context.Background(), build(), testRegistry(),
		StdIO{Stdin: strings.NewReader(in), Stdout: &profiled}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if normal.String() != profiled.String() {
		t.Errorf("profile output differs:\nnormal  %q\nprofile %q", normal.String(), profiled.String())
	}
	if len(res.NodeTimes) == 0 {
		t.Fatal("no node times recorded")
	}
	for _, nt := range res.NodeTimes {
		if nt.Active != nt.Wall {
			t.Errorf("profile mode: active (%v) must equal wall (%v)", nt.Active, nt.Wall)
		}
	}
}

func TestProfileMapAggregate(t *testing.T) {
	sortNode := dfg.NewNode(dfg.KindCommand, "sort", []dfg.Arg{dfg.Lit("-n")}, annot.Pure)
	sortNode.Agg = &dfg.AggSpec{
		MapName: "sort", MapArgs: []string{"-n"},
		AggName: "sort", AggArgs: []string{"-m", "-n"},
	}
	g := buildPipeline(sortNode)
	dfg.Apply(g, dfg.Options{Width: 3, Split: true, Eager: dfg.EagerFull})
	var out bytes.Buffer
	res, err := Profile(context.Background(), g, testRegistry(),
		StdIO{Stdin: strings.NewReader("3\n1\n2\n9\n5\n4\n"), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "1\n2\n3\n4\n5\n9\n" {
		t.Errorf("profile map/agg output = %q", out.String())
	}
	if res.NodeCount != len(res.NodeTimes) {
		t.Errorf("node count %d != times %d", res.NodeCount, len(res.NodeTimes))
	}
}

func TestExecuteMeteredActiveLessThanWall(t *testing.T) {
	// A consumer that blocks on a slow producer accumulates blocked
	// time: its active time must be below wall time.
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "sort", nil, annot.Pure),
		dfg.NewNode(dfg.KindCommand, "cat", nil, annot.Stateless),
	)
	var in strings.Builder
	for i := 0; i < 20000; i++ {
		in.WriteString("line with words to sort\n")
	}
	var out bytes.Buffer
	res, err := Execute(context.Background(), g, testRegistry(),
		StdIO{Stdin: strings.NewReader(in.String()), Stdout: &out}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The cat node waits for sort (a blocking producer).
	for _, nt := range res.NodeTimes {
		if nt.Name == "cat" && nt.Active >= nt.Wall {
			t.Errorf("cat active %v not below wall %v (no blocking metered)", nt.Active, nt.Wall)
		}
	}
}

func TestBlockingEagerConfig(t *testing.T) {
	g := buildPipeline(
		dfg.NewNode(dfg.KindCommand, "tr", []dfg.Arg{dfg.Lit("a-z"), dfg.Lit("A-Z")}, annot.Stateless),
	)
	dfg.Apply(g, dfg.Options{Width: 2, Split: true, Eager: dfg.EagerBlocking})
	var out bytes.Buffer
	_, err := Execute(context.Background(), g, testRegistry(),
		StdIO{Stdin: strings.NewReader("x\ny\nz\n"), Stdout: &out},
		Config{BlockingEager: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "X\nY\nZ\n" {
		t.Errorf("blocking eager output = %q", out.String())
	}
}

func TestExecuteRejectsInvalidGraph(t *testing.T) {
	g := dfg.New()
	n := dfg.NewNode(dfg.KindCommand, "cat", []dfg.Arg{dfg.InArg(3)}, annot.Stateless)
	g.AddNode(n)
	if _, err := Execute(context.Background(), g, testRegistry(), StdIO{}, Config{}); err == nil {
		t.Error("invalid graph accepted")
	}
}
