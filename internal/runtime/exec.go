package runtime

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/commands"
	"repro/internal/dfg"
)

// SplitStrategy selects the executor's implementation for split nodes
// the planner left unmarked. (Round-robin-marked splits always run
// round-robin: their framed consumers depend on chunk framing.)
type SplitStrategy int

// Split strategies.
const (
	// SplitAuto uses the seek-based fileSplit for graph-input files when
	// InputAwareSplit is set, and the barrier generalSplit otherwise.
	SplitAuto SplitStrategy = iota
	// SplitGeneral forces the barrier split everywhere.
	SplitGeneral
	// SplitFile prefers the seek-based split whenever the split's input
	// is a graph-input file, regardless of InputAwareSplit.
	SplitFile
)

// Config controls graph execution.
type Config struct {
	// BlockingEager bounds eager buffers at this many bytes (the
	// Blocking Eager configuration in Fig. 7); 0 means eager edges are
	// unbounded.
	BlockingEager int
	// InputAwareSplit selects the seek-based split for graph-input
	// files (Par + B.Split in Fig. 7).
	InputAwareSplit bool
	// Split picks among the split implementations for unmarked split
	// nodes; the zero value preserves the InputAwareSplit behaviour.
	Split SplitStrategy
	// DisableFusion makes the executor run KindFused nodes as their
	// original command chain connected by internal pipes instead of the
	// in-place kernel loop — the A/B switch behind BenchmarkFusion and a
	// safety valve when a planned stage turns out to have no kernel.
	DisableFusion bool
	// Dir is the working directory for file bindings.
	Dir string
	// Env is the command environment.
	Env map[string]string
	// Remote executes KindRemote nodes on a worker pool; nil runs them
	// locally through ExecRemoteLocal (same bytes, no network).
	Remote RemoteExecutor
	// Budget, when set, is the owning job's resource accounting: pipes
	// charge queued payload against its pipe-memory ceiling. nil =
	// unlimited.
	Budget *Budget
	// Traffic, when set, receives live byte/chunk movement as pipes
	// enqueue — the running-job view of what Result reports at the end.
	Traffic *Traffic
	// Sandbox confines command file access to Dir (absolute paths and
	// ".." escapes fail) — the execution half of JobLimits.Sandbox.
	Sandbox bool
}

// StdIO binds the graph's boundary streams.
type StdIO struct {
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
}

// Result reports a graph execution.
type Result struct {
	// ExitCode is the exit status of the graph's final node (the node
	// feeding the primary output), following shell pipeline semantics.
	ExitCode int
	// NodeCount is the number of node goroutines launched (the paper's
	// "#nodes", Tab. 2).
	NodeCount int
	// NodeTimes reports per-node wall and active (wall minus
	// pipe-blocked) durations, feeding the multicore scheduling
	// simulator on single-core hosts.
	NodeTimes []NodeTime
	// BytesMoved and ChunksMoved total the traffic through the graph's
	// internal edges: payload bytes and discrete blocks enqueued. The
	// ratio exposes how chunky (amortized) the data plane ran.
	BytesMoved  int64
	ChunksMoved int64
}

// NodeTime is one node's measured execution profile.
type NodeTime struct {
	ID     int
	Name   string
	Wall   time.Duration
	Active time.Duration
	// Stages breaks a fused node's work down per collapsed stage: the
	// fused loop attributes kernel time and byte traffic to each stage
	// even though no pipe separates them any more.
	Stages []StageTime
}

// StageTime is one fused stage's attribution: time spent inside the
// stage's kernel and the bytes that crossed it. BytesIn/BytesOut play
// the role the pipe meters played before fusion removed the pipes.
type StageTime struct {
	Name     string
	Active   time.Duration
	BytesIn  int64
	BytesOut int64
}

// Execute runs the graph to completion: one goroutine per node, edges as
// in-memory streams, boundary edges bound to files or StdIO. It returns
// when every node has terminated.
func Execute(ctx context.Context, g *dfg.Graph, reg *commands.Registry, stdio StdIO, cfg Config) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if stdio.Stdout == nil {
		stdio.Stdout = io.Discard
	}
	if stdio.Stderr == nil {
		stdio.Stderr = io.Discard
	}
	ex := &executor{
		g: g, reg: reg, stdio: stdio, cfg: cfg,
		readers: map[*dfg.Edge]io.ReadCloser{},
		writers: map[*dfg.Edge]io.WriteCloser{},
		names:   map[*dfg.Edge]string{},
		meters:  map[*dfg.Node]*int64{},
	}
	for _, n := range g.Nodes {
		ex.meters[n] = new(int64)
	}
	return ex.run(ctx)
}

type executor struct {
	g     *dfg.Graph
	reg   *commands.Registry
	stdio StdIO
	cfg   Config

	readers map[*dfg.Edge]io.ReadCloser
	writers map[*dfg.Edge]io.WriteCloser
	names   map[*dfg.Edge]string
	meters  map[*dfg.Node]*int64 // blocked ns per node
	pipes   []*pipe              // internal edge pipes, for traffic totals

	stageMu    sync.Mutex
	stageTimes map[*dfg.Node][]StageTime // per-stage attribution of fused nodes

	closers []io.Closer
	closeMu sync.Mutex
}

// recordStages stores a fused node's per-stage attribution.
func (ex *executor) recordStages(n *dfg.Node, st []StageTime) {
	ex.stageMu.Lock()
	if ex.stageTimes == nil {
		ex.stageTimes = map[*dfg.Node][]StageTime{}
	}
	ex.stageTimes[n] = st
	ex.stageMu.Unlock()
}

// stagesFor reads back a fused node's attribution (nil for plain nodes).
func (ex *executor) stagesFor(n *dfg.Node) []StageTime {
	ex.stageMu.Lock()
	defer ex.stageMu.Unlock()
	return ex.stageTimes[n]
}

// traffic sums lifetime byte/chunk movement across the internal pipes.
func (ex *executor) traffic() (bytes, chunks int64) {
	for _, p := range ex.pipes {
		b, c := p.moved()
		bytes += b
		chunks += c
	}
	return bytes, chunks
}

// virtualPrefix namespaces edge streams in the overlay filesystem. The
// value lives in the commands package so extension-API wrappers can
// recognize stream operands.
const virtualPrefix = commands.VirtualStreamPrefix

func (ex *executor) run(ctx context.Context) (*Result, error) {
	// Materialize edges.
	osfs := commands.OSFS{Dir: ex.cfg.Dir, Jail: ex.cfg.Sandbox}
	for _, e := range ex.g.Edges {
		if err := ex.materialize(e, osfs); err != nil {
			ex.closeEverything()
			return nil, err
		}
	}

	overlay := &overlayFS{base: osfs, streams: ex.readers, names: ex.names}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var finalStatus int
	nodeTimes := make([]NodeTime, len(ex.g.Nodes))
	finalNode := ex.finalNode()

	for i, n := range ex.g.Nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			// Containment boundary: a panic anywhere in this node's
			// execution — a builtin bug, a user-registered extension
			// kernel or aggregator, a fused stage — fails this job
			// alone; the process and every other job survive.
			err := func() (err error) {
				defer Contain("node "+n.Name, &err)
				return ex.runNode(ctx, n, overlay)
			}()
			wall := time.Since(start)
			blocked := time.Duration(atomic.LoadInt64(ex.meters[n]))
			active := wall - blocked
			if active < 0 {
				active = 0
			}
			nodeTimes[i] = NodeTime{ID: n.ID, Name: n.Name, Wall: wall, Active: active, Stages: ex.stagesFor(n)}
			code := commands.ExitCode(err)
			if err != nil && !isCleanTermination(err) {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("node %s: %w", n, err)
				}
				mu.Unlock()
			}
			if n == finalNode {
				mu.Lock()
				finalStatus = code
				mu.Unlock()
			}
			// The node is done: close its ends of every edge. Closing
			// unread inputs delivers the SIGPIPE analog upstream —
			// PaSh's cleanup logic that prevents dangling-FIFO
			// deadlocks (§5.2).
			ex.closeNodeEdges(n)
		}()
	}
	wg.Wait()
	ex.closeEverything()
	if firstErr != nil {
		return nil, firstErr
	}
	res := &Result{ExitCode: finalStatus, NodeCount: len(ex.g.Nodes), NodeTimes: nodeTimes}
	res.BytesMoved, res.ChunksMoved = ex.traffic()
	return res, nil
}

// isCleanTermination treats downstream-closed write failures and
// non-zero exit statuses as normal pipeline behaviour.
func isCleanTermination(err error) bool {
	if errors.Is(err, ErrDownstreamClosed) {
		return true
	}
	var ee *commands.ExitError
	return errors.As(err, &ee)
}

// finalNode picks the node feeding the primary output (stdout binding if
// present, else any graph output).
func (ex *executor) finalNode() *dfg.Node {
	var fallback *dfg.Node
	for _, e := range ex.g.OutputEdges() {
		if e.From == nil {
			continue
		}
		if e.Sink.Kind == dfg.BindStdout {
			return e.From
		}
		fallback = e.From
	}
	return fallback
}

func (ex *executor) materialize(e *dfg.Edge, osfs commands.OSFS) error {
	// Producer end.
	switch {
	case e.From != nil:
		// Internal producer: a stream. Created below together with the
		// consumer end.
	case e.Source.Kind == dfg.BindFile:
		f, err := osfs.Open(e.Source.Path)
		if err != nil {
			return fmt.Errorf("runtime: input %s: %w", e.Source.Path, err)
		}
		ex.readers[e] = f
		ex.track(f)
	case e.Source.Kind == dfg.BindStdin:
		r := ex.stdio.Stdin
		if r == nil {
			r = strings.NewReader("")
		}
		ex.readers[e] = io.NopCloser(r)
	case e.Source.Kind == dfg.BindLiteral:
		// Literal input (a heredoc body): the edge reads the carried
		// bytes directly, no file involved.
		ex.readers[e] = io.NopCloser(strings.NewReader(e.Source.Data))
	default:
		// Unbound input: empty stream.
		ex.readers[e] = io.NopCloser(strings.NewReader(""))
	}

	// Consumer end.
	switch {
	case e.To != nil && e.From == nil:
		// Reader already set above; nothing else to do.
	case e.To == nil && e.From != nil:
		switch e.Sink.Kind {
		case dfg.BindFile:
			var w io.WriteCloser
			var err error
			if e.Sink.Append {
				w, err = osfs.Append(e.Sink.Path)
			} else {
				w, err = osfs.Create(e.Sink.Path)
			}
			if err != nil {
				return fmt.Errorf("runtime: output %s: %w", e.Sink.Path, err)
			}
			ex.writers[e] = w
			ex.track(w)
		case dfg.BindStdout:
			ex.writers[e] = nopWriteCloser{ex.stdio.Stdout}
		case dfg.BindNone:
			// Explicitly discarded stream (a pipe whose consumer reads a
			// file instead, POSIX `a | b <f` semantics).
			ex.writers[e] = nopWriteCloser{io.Discard}
		}
	case e.To != nil && e.From != nil:
		blocking := 0
		if e.Eager && ex.cfg.BlockingEager > 0 {
			blocking = ex.cfg.BlockingEager
		}
		s := newEdgeStream(e.Eager, blocking)
		s.p.readMeter = ex.meters[e.To]
		s.p.writeMeter = ex.meters[e.From]
		s.p.budget = ex.cfg.Budget
		s.p.traffic = ex.cfg.Traffic
		ex.readers[e] = s.reader()
		ex.writers[e] = s.writer()
		ex.pipes = append(ex.pipes, s.p)
	case e.To == nil && e.From == nil:
		return fmt.Errorf("runtime: edge %s is fully unbound", e)
	}
	if e.From == nil && e.Source.Kind == dfg.BindFile {
		// File inputs keep their real name: commands that embed input
		// names in their output (grep's file prefixes) behave exactly as
		// in a real shell, and the overlay passes the path through.
		ex.names[e] = e.Source.Path
	} else {
		ex.names[e] = fmt.Sprintf("%s%d", virtualPrefix, e.ID)
	}
	return nil
}

func (ex *executor) track(c io.Closer) {
	ex.closeMu.Lock()
	ex.closers = append(ex.closers, c)
	ex.closeMu.Unlock()
}

func (ex *executor) closeEverything() {
	ex.closeMu.Lock()
	defer ex.closeMu.Unlock()
	for _, c := range ex.closers {
		c.Close()
	}
	ex.closers = nil
}

// closeNodeEdges closes the node's side of each of its edges.
func (ex *executor) closeNodeEdges(n *dfg.Node) {
	for _, e := range n.Out {
		if w := ex.writers[e]; w != nil {
			w.Close()
		}
	}
	for _, e := range n.In {
		if r := ex.readers[e]; r != nil {
			r.Close()
		}
	}
}

// runNode executes one node.
func (ex *executor) runNode(ctx context.Context, n *dfg.Node, overlay *overlayFS) error {
	if n.Kind == dfg.KindSplit {
		return ex.runSplit(n)
	}
	if n.Kind == dfg.KindFused {
		return ex.runFused(n, overlay)
	}
	if n.Kind == dfg.KindRemote {
		return ex.runRemote(ctx, n)
	}
	if n.Framed {
		if err, ok := ex.runFramed(n, overlay); ok {
			return err
		}
	}
	// Stdout: the (single) output edge; nodes with no outputs write to
	// the void.
	var stdout io.Writer = io.Discard
	if len(n.Out) > 0 {
		stdout = ex.writers[n.Out[0]]
	}
	var stdin io.Reader = strings.NewReader("")
	if n.StdinInput >= 0 {
		stdin = ex.readers[n.In[n.StdinInput]]
	}
	args := n.ArgStrings(func(i int) string { return ex.names[n.In[i]] })
	cctx := &commands.Context{
		Args:   args,
		Stdin:  stdin,
		Stdout: stdout,
		Stderr: ex.stdio.Stderr,
		FS:     overlay,
		Env:    ex.cfg.Env,
	}
	reg := ex.reg
	if n.Kind == dfg.KindCat || n.Kind == dfg.KindMerge || n.Kind == dfg.KindRelay {
		// Collector and relay nodes are the runtime's own primitives,
		// inserted by the transformations: they always run the builtin
		// implementations, even when a session shadows "cat" with a
		// user command.
		reg = commands.Std()
	}
	return reg.Run(n.Name, cctx)
}

// runSplit dispatches to the right split strategy: round-robin when the
// planner marked the node (its consumers are framed), the seek-based
// fileSplit for graph-input files under SplitFile/InputAwareSplit, and
// the barrier generalSplit otherwise.
func (ex *executor) runSplit(n *dfg.Node) error {
	ws := make([]io.WriteCloser, len(n.Out))
	for i, e := range n.Out {
		ws[i] = ex.writers[e]
	}
	in := n.In[0]
	if n.RoundRobin {
		return splitError(n.ID, roundRobinSplit(ex.readers[in], ws))
	}
	fileInput := in.From == nil && in.Source.Kind == dfg.BindFile
	useFile := fileInput && ex.cfg.Split != SplitGeneral &&
		(ex.cfg.Split == SplitFile || ex.cfg.InputAwareSplit)
	if useFile {
		path := in.Source.Path
		if !filepath.IsAbs(path) && ex.cfg.Dir != "" {
			path = filepath.Join(ex.cfg.Dir, path)
		}
		// The input edge reader is unused in this mode; close it so any
		// producer bookkeeping settles.
		ex.readers[in].Close()
		return splitError(n.ID, fileSplit(path, ws))
	}
	return splitError(n.ID, generalSplit(ex.readers[in], ws))
}

// chunkCollector accumulates one framed invocation's output into a
// single owned block, adopting whole chunks when it can.
type chunkCollector struct{ buf []byte }

func (c *chunkCollector) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	return len(p), nil
}

func (c *chunkCollector) WriteChunk(b []byte) error {
	if len(c.buf) == 0 {
		commands.PutBlock(c.buf)
		c.buf = b
		return nil
	}
	c.buf = append(c.buf, b...)
	commands.PutBlock(b)
	return nil
}

// runFramed executes a framed replica under the round-robin protocol:
// the command runs once per input chunk (sound for stateless commands —
// the same per-chunk independence that justified splitting), and exactly
// one output chunk is emitted per input chunk, empty ones included, so
// the downstream merge can restore the original order by rotation. It
// reports ok=false when the node's edges do not support chunk framing,
// in which case the caller falls back to a plain streaming run.
func (ex *executor) runFramed(n *dfg.Node, overlay *overlayFS) (error, bool) {
	if len(n.In) != 1 || len(n.Out) != 1 || n.StdinInput != 0 {
		return nil, false
	}
	cr, rok := ex.readers[n.In[0]].(commands.ChunkReader)
	cw, wok := ex.writers[n.Out[0]].(commands.ChunkWriter)
	if !rok || !wok {
		return nil, false
	}
	args := n.ArgStrings(func(i int) string { return ex.names[n.In[i]] })
	for {
		b, release, err := cr.ReadChunk()
		if err == io.EOF {
			return nil, true
		}
		if err != nil {
			return err, true
		}
		col := &chunkCollector{buf: commands.GetBlock()}
		cctx := &commands.Context{
			Args:   args,
			Stdin:  bytes.NewReader(b),
			Stdout: col,
			Stderr: ex.stdio.Stderr,
			FS:     overlay,
			Env:    ex.cfg.Env,
		}
		runErr := ex.reg.Run(n.Name, cctx)
		release()
		if runErr != nil {
			// Per-chunk non-zero statuses (grep finding nothing in this
			// chunk) are normal; real failures abort the node.
			var ee *commands.ExitError
			if !errors.As(runErr, &ee) {
				commands.PutBlock(col.buf)
				return runErr, true
			}
		}
		if werr := cw.WriteChunk(col.buf); werr != nil {
			return werr, true
		}
	}
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// overlayFS resolves virtual edge names to live streams and passes
// everything else through to the real filesystem. Commands are none the
// wiser that some of their "files" are pipes — mirroring how PaSh's
// generated scripts substitute FIFOs for files.
type overlayFS struct {
	base    commands.OSFS
	streams map[*dfg.Edge]io.ReadCloser
	names   map[*dfg.Edge]string

	mu     sync.Mutex
	byName map[string]io.ReadCloser
}

func (o *overlayFS) index() map[string]io.ReadCloser {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.byName == nil {
		o.byName = make(map[string]io.ReadCloser, len(o.streams))
		for e, r := range o.streams {
			o.byName[o.names[e]] = r
		}
	}
	return o.byName
}

// Open resolves virtual names to edge readers.
func (o *overlayFS) Open(path string) (io.ReadCloser, error) {
	if strings.HasPrefix(path, virtualPrefix) {
		if r, ok := o.index()[path]; ok {
			return r, nil
		}
		return nil, fmt.Errorf("runtime: unknown stream %s", path)
	}
	return o.base.Open(path)
}

// Create passes through to the real filesystem.
func (o *overlayFS) Create(path string) (io.WriteCloser, error) {
	if strings.HasPrefix(path, virtualPrefix) {
		return nil, fmt.Errorf("runtime: cannot create stream %s", path)
	}
	return o.base.Create(path)
}

// Append passes through to the real filesystem.
func (o *overlayFS) Append(path string) (io.WriteCloser, error) {
	if strings.HasPrefix(path, virtualPrefix) {
		return nil, fmt.Errorf("runtime: cannot append to stream %s", path)
	}
	return o.base.Append(path)
}
