package runtime

import "sync/atomic"

// Traffic is a live, lock-free meter of data-plane movement: payload
// bytes and discrete blocks enqueued into the graph's internal pipes.
// Result carries the same totals after an execution finishes; Traffic
// exists for observers that cannot wait — Job.Stats on a running job,
// the /metrics rows of a streaming job that never finishes. Attach one
// via Config.Traffic; executions sharing a meter accumulate into it.
type Traffic struct {
	bytes  atomic.Int64
	chunks atomic.Int64
}

// note records one enqueued block of n payload bytes.
func (t *Traffic) note(n int) {
	if t == nil {
		return
	}
	t.bytes.Add(int64(n))
	t.chunks.Add(1)
}

// Moved reports the lifetime totals: payload bytes and blocks enqueued.
func (t *Traffic) Moved() (bytes, chunks int64) {
	if t == nil {
		return 0, 0
	}
	return t.bytes.Load(), t.chunks.Load()
}
