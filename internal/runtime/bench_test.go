package runtime

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/commands"
)

// BenchmarkPipeThroughput compares the two ways bytes cross an edge:
//
//	copy  — the classic copy-through path (Write stages into blocks,
//	        Read copies back out): two copies per byte, like the old
//	        single-buffer pipe.
//	chunk — the ownership-transfer path (WriteChunk/ReadChunk): the
//	        block the producer filled is the block the consumer reads.
//
// The acceptance bar for the chunked data plane is chunk >= 2x copy on
// 64 KiB blocks.
func BenchmarkPipeThroughput(b *testing.B) {
	const block = commands.BlockSize
	const bound = 16 * block // amortize wakeups across a window of blocks
	payload := bytes.Repeat([]byte{'z'}, block)

	b.Run("copy", func(b *testing.B) {
		p := newPipe(bound)
		b.SetBytes(block)
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, block)
			for {
				_, err := p.Read(buf)
				if err == io.EOF {
					return
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		p.CloseWrite()
		<-done
	})

	b.Run("chunk", func(b *testing.B) {
		p := newPipe(bound)
		b.SetBytes(block)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				blk, release, err := p.ReadChunk()
				if err == io.EOF {
					return
				}
				if err != nil {
					b.Error(err)
					return
				}
				_ = blk
				release()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk := commands.GetBlock()[:block]
			if err := p.WriteChunk(blk); err != nil {
				b.Fatal(err)
			}
		}
		p.CloseWrite()
		<-done
	})
}

// benchSplitInput builds ~4 MiB of line data.
func benchSplitInput() []byte {
	var sb bytes.Buffer
	line := strings.Repeat("benchmark words flowing by ", 3) + "\n"
	for sb.Len() < 4<<20 {
		sb.WriteString(line)
	}
	return sb.Bytes()
}

// drainStreams consumes every split output concurrently via the chunk
// fast path.
func drainStreams(streams []*edgeStream) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var inner [16]chan struct{}
		for i, s := range streams {
			ch := make(chan struct{})
			inner[i] = ch
			go func(r readEnd, ch chan struct{}) {
				defer close(ch)
				for {
					_, release, err := r.ReadChunk()
					if err != nil {
						return
					}
					release()
				}
			}(readEnd{s.p}, ch)
		}
		for i := range streams {
			<-inner[i]
		}
	}()
	return done
}

// BenchmarkSplitStrategies compares the three split implementations on
// the same workload at width 4: the barrier generalSplit, the streaming
// roundRobinSplit, and the seek-based fileSplit.
func BenchmarkSplitStrategies(b *testing.B) {
	input := benchSplitInput()
	const width = 4

	run := func(b *testing.B, split func(ws []io.WriteCloser) error) {
		b.SetBytes(int64(len(input)))
		for i := 0; i < b.N; i++ {
			streams := make([]*edgeStream, width)
			ws := make([]io.WriteCloser, width)
			for j := range streams {
				streams[j] = newEdgeStream(false, 0) // bounded: real backpressure
				ws[j] = streams[j].writer()
			}
			done := drainStreams(streams)
			if err := split(ws); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	}

	b.Run("general", func(b *testing.B) {
		run(b, func(ws []io.WriteCloser) error {
			return generalSplit(bytes.NewReader(input), ws)
		})
	})
	b.Run("round-robin", func(b *testing.B) {
		run(b, func(ws []io.WriteCloser) error {
			return roundRobinSplit(bytes.NewReader(input), ws)
		})
	})
	b.Run("file", func(b *testing.B) {
		dir := b.TempDir()
		path := filepath.Join(dir, "in.txt")
		if err := os.WriteFile(path, input, 0o644); err != nil {
			b.Fatal(err)
		}
		run(b, func(ws []io.WriteCloser) error {
			return fileSplit(path, ws)
		})
	})
}
