package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is the shared control plane for a multi-tenant process: N
// concurrent script executions share one machine instead of each
// claiming its configured Width worth of goroutines. It implements two
// separate disciplines:
//
//   - Script admission (Admit/AdmitKey/release): a bounded slot pool
//     over whole script executions. Admit blocks — this is where
//     backpressure on a saturated machine lives. Waiters queue per
//     admission key (the tenant, for a daemon), and freed slots are
//     granted round-robin across the keys with queued work: a burst
//     from one tenant lengthens only its own queue, never the head-of-
//     line wait of a quiet tenant. Only *top-level* entry points (a
//     Session.Run, a daemon request) admit; nested interpreters spawned
//     for command substitution or compound-pipeline stages never do, so
//     admission cannot deadlock against a region the same script is
//     already running.
//
//   - Width tokens (AcquireWidth/release): a pool of data-parallelism
//     tokens sized to the machine. Every region is entitled to run
//     sequentially (width 1) without asking; tokens only pay for the
//     *extra* replicas beyond the first. AcquireWidth never blocks — a
//     region that wants width 8 on a busy machine degrades toward
//     sequential rather than queueing, which keeps pipelines of
//     concurrently-executing stages deadlock-free by construction.
type Scheduler struct {
	tokens chan struct{} // extra-replica width tokens

	totalTokens int

	// Admission state: an explicit slot count plus per-key FIFO queues,
	// all under amu. ring lists the keys that currently have waiters in
	// round-robin order; rrIdx is the next key to grant to.
	amu        sync.Mutex
	free       int
	totalSlots int
	queues     map[string][]*admitWaiter
	ring       []string
	rrIdx      int

	// Admission-queue bounds (load shedding). queueLimit caps how many
	// admissions may be blocked waiting at once; queueWait caps how long
	// any one admission may wait. Zero means unbounded (the historical
	// block-forever behaviour). Set before sharing the scheduler.
	queueLimit int
	queueWait  time.Duration

	admitted   atomic.Int64 // scripts admitted so far
	waited     atomic.Int64 // admissions that had to block
	waitNanos  atomic.Int64 // total time spent blocked in Admit
	active     atomic.Int64 // scripts currently admitted
	queued     atomic.Int64 // admissions currently blocked waiting
	sheds      atomic.Int64 // admissions refused by the queue bounds
	holdEWMA   atomic.Int64 // smoothed slot hold time, ns (alpha 1/8)
	tokensOut  atomic.Int64 // width tokens currently held
	widthAsks  atomic.Int64 // AcquireWidth calls
	widthTrims atomic.Int64 // AcquireWidth calls granted less than asked

	leases        atomic.Int64 // WidthLeases currently outstanding
	leaseDegrades atomic.Int64 // leases that shed extras under queue pressure
	leaseRestores atomic.Int64 // leases that regrew after pressure cleared
}

// admitWaiter is one blocked admission. granted is set under amu before
// ready is closed, so a cancelling waiter can tell "I hold a slot I
// must hand back" from "I am still in the queue".
type admitWaiter struct {
	key     string
	ready   chan struct{}
	granted bool
}

// ErrAdmissionShed is the sentinel every shed admission matches: the
// scheduler refused to queue the script because the admission queue was
// full or the wait deadline passed. Callers (the daemon) translate it
// into backpressure toward the client (HTTP 503 + Retry-After) instead
// of letting queued work pile up without bound.
var ErrAdmissionShed = errors.New("runtime: admission shed")

// ShedError reports why an admission was shed. It matches
// ErrAdmissionShed under errors.Is.
type ShedError struct {
	// Reason is "queue-full" or "deadline".
	Reason string
	// QueueDepth is the number of waiters at shed time.
	QueueDepth int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("runtime: admission shed (%s, %d queued)", e.Reason, e.QueueDepth)
}

// Is makes every ShedError match the ErrAdmissionShed sentinel.
func (e *ShedError) Is(target error) bool { return target == ErrAdmissionShed }

// NewScheduler builds a scheduler with the given width-token pool size;
// tokens <= 0 sizes the pool to the machine (GOMAXPROCS). Script
// admission slots default to the same count; adjust with SetMaxScripts
// before sharing the scheduler.
func NewScheduler(tokens int) *Scheduler {
	if tokens <= 0 {
		tokens = stdruntime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		tokens:      make(chan struct{}, tokens),
		free:        tokens,
		totalSlots:  tokens,
		totalTokens: tokens,
		queues:      map[string][]*admitWaiter{},
	}
	for i := 0; i < tokens; i++ {
		s.tokens <- struct{}{}
	}
	return s
}

// SetMaxScripts resizes the script-admission slot pool. It must be
// called before the scheduler is shared with runners.
func (s *Scheduler) SetMaxScripts(n int) {
	if n <= 0 {
		n = s.totalTokens
	}
	s.amu.Lock()
	s.free = n
	s.totalSlots = n
	s.amu.Unlock()
}

// SetAdmissionQueue bounds the admission queue: at most limit
// admissions may wait for a slot at once, and none for longer than
// maxWait. Excess or expired admissions fail fast with a *ShedError
// instead of queueing. Zero disables the respective bound. Must be
// called before the scheduler is shared with runners.
func (s *Scheduler) SetAdmissionQueue(limit int, maxWait time.Duration) {
	s.queueLimit = limit
	s.queueWait = maxWait
}

// Admit blocks until a script slot is free (or ctx is done, or the
// admission-queue bounds shed the request) and returns a release
// function. Callers must be top-level script executions. Admissions
// with no identity share one anonymous queue key.
func (s *Scheduler) Admit(ctx context.Context) (func(), error) {
	return s.AdmitKey(ctx, "")
}

// AdmitKey is Admit with an admission key — the tenant, for a daemon.
// Waiters queue FIFO within their key and freed slots rotate round-
// robin across keys with queued work, so one key's backlog cannot
// impose head-of-line delay on another's.
func (s *Scheduler) AdmitKey(ctx context.Context, key string) (func(), error) {
	start := time.Now()
	s.amu.Lock()
	if s.free > 0 && len(s.ring) == 0 {
		s.free--
		s.amu.Unlock()
		return s.finishGrant(ctx)
	}
	if lim := s.queueLimit; lim > 0 && int(s.queued.Load()) >= lim {
		depth := int(s.queued.Load())
		s.amu.Unlock()
		s.sheds.Add(1)
		return nil, &ShedError{Reason: "queue-full", QueueDepth: depth}
	}
	w := &admitWaiter{key: key, ready: make(chan struct{})}
	s.enqueueLocked(w)
	s.amu.Unlock()
	s.waited.Add(1)

	wctx := ctx
	if s.queueWait > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(ctx, s.queueWait)
		defer cancel()
	}
	select {
	case <-w.ready:
		s.waitNanos.Add(int64(time.Since(start)))
		return s.finishGrant(ctx)
	case <-wctx.Done():
		s.amu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours and must
			// go straight back to the next waiter (or the free pool), not
			// ride through a doomed execution.
			s.grantNextLocked()
			s.amu.Unlock()
		} else {
			s.dequeueLocked(w)
			s.amu.Unlock()
		}
		if ctx.Err() == nil {
			// The queue-wait deadline expired, not the caller: shed.
			s.sheds.Add(1)
			return nil, &ShedError{Reason: "deadline", QueueDepth: int(s.queued.Load())}
		}
		return nil, fmt.Errorf("runtime: admission: %w", ctx.Err())
	}
}

// finishGrant finalizes a granted slot: a caller already cancelled
// must hand it straight back, everyone else gets the release closure.
// (The slot itself is owned by the caller at this point — no lock held.)
func (s *Scheduler) finishGrant(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		s.amu.Lock()
		s.grantNextLocked()
		s.amu.Unlock()
		return nil, fmt.Errorf("runtime: admission: %w", err)
	}
	s.admitted.Add(1)
	s.active.Add(1)
	held := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.active.Add(-1)
			s.noteHold(time.Since(held))
			s.amu.Lock()
			s.grantNextLocked()
			s.amu.Unlock()
		})
	}, nil
}

// enqueueLocked appends a waiter to its key's FIFO, registering the key
// in the round-robin ring on first use. Callers hold amu.
func (s *Scheduler) enqueueLocked(w *admitWaiter) {
	if len(s.queues[w.key]) == 0 {
		s.ring = append(s.ring, w.key)
	}
	s.queues[w.key] = append(s.queues[w.key], w)
	s.queued.Add(1)
}

// dequeueLocked withdraws a still-waiting waiter (cancellation path).
// Callers hold amu.
func (s *Scheduler) dequeueLocked(w *admitWaiter) {
	q := s.queues[w.key]
	for i, cand := range q {
		if cand == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(s.queues, w.key)
		s.dropRingKeyLocked(w.key)
	} else {
		s.queues[w.key] = q
	}
	s.queued.Add(-1)
}

// dropRingKeyLocked removes a key from the round-robin ring, keeping
// rrIdx pointed at the same next key. Callers hold amu.
func (s *Scheduler) dropRingKeyLocked(key string) {
	for i, k := range s.ring {
		if k == key {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			if i < s.rrIdx {
				s.rrIdx--
			}
			return
		}
	}
}

// grantNextLocked hands a freed slot to the head of the next key's
// queue in round-robin order, or banks it in the free pool when nobody
// waits. Callers hold amu.
func (s *Scheduler) grantNextLocked() {
	if len(s.ring) == 0 {
		s.free++
		return
	}
	if s.rrIdx >= len(s.ring) {
		s.rrIdx = 0
	}
	key := s.ring[s.rrIdx]
	q := s.queues[key]
	w := q[0]
	if len(q) == 1 {
		delete(s.queues, key)
		s.ring = append(s.ring[:s.rrIdx], s.ring[s.rrIdx+1:]...)
		// rrIdx already points at the next key.
	} else {
		s.queues[key] = q[1:]
		s.rrIdx++
	}
	s.queued.Add(-1)
	w.granted = true
	close(w.ready)
}

// noteHold folds one finished script's slot hold time into the EWMA
// that EstimateWait consumes (alpha 1/8).
func (s *Scheduler) noteHold(d time.Duration) {
	for {
		old := s.holdEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if s.holdEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// EstimateWait predicts how long a new admission would wait right now:
// the work ahead of it (queued waiters plus running scripts) times the
// smoothed slot hold time, divided across the slot pool, clamped to
// [1s, 2min] so shed responses always carry a sane Retry-After hint.
func (s *Scheduler) EstimateWait() time.Duration {
	const floor, ceil = time.Second, 2 * time.Minute
	hold := time.Duration(s.holdEWMA.Load())
	if hold <= 0 {
		return floor
	}
	ahead := s.queued.Load() + s.active.Load()
	slots := int64(s.totalSlots)
	if slots < 1 {
		slots = 1
	}
	est := hold * time.Duration(ahead+1) / time.Duration(slots)
	if est < floor {
		return floor
	}
	if est > ceil {
		return ceil
	}
	return est
}

// AcquireWidth grants an effective parallelism width for one region:
// 1 (always, immediately) plus up to want-1 extra tokens from the pool,
// never blocking. The release function returns the extras.
func (s *Scheduler) AcquireWidth(want int) (int, func()) {
	s.widthAsks.Add(1)
	if want < 1 {
		want = 1
	}
	extra := 0
grab:
	for extra < want-1 {
		select {
		case <-s.tokens:
			extra++
		default:
			break grab
		}
	}
	if 1+extra < want {
		s.widthTrims.Add(1)
	}
	s.tokensOut.Add(int64(extra))
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.tokensOut.Add(int64(-extra))
			for i := 0; i < extra; i++ {
				s.tokens <- struct{}{}
			}
		})
	}
	return 1 + extra, release
}

// WidthLease is a reassessable width grant for long-running jobs. A
// plain AcquireWidth holds its extra tokens until release — fine for a
// region that runs milliseconds, but a streaming job's "region" runs
// forever, and tokens it took at admission time would starve every
// later script down to sequential width for the job's whole lifetime.
// A lease makes the grant revocable at the holder's own safe points:
// the streaming runner calls Reassess at each window boundary, and the
// lease sheds its extra tokens whenever the admission queue is
// non-empty (scripts are waiting — the machine is oversubscribed),
// regrowing toward the requested width once the pressure clears.
type WidthLease struct {
	s    *Scheduler
	want int

	mu    sync.Mutex
	extra int
	done  bool
}

// LeaseWidth grants an effective width like AcquireWidth (1 plus up to
// want-1 extra tokens, never blocking) but returns a revocable lease.
// Call Reassess at safe points to keep the grant honest under load, and
// Release when the job ends.
func (s *Scheduler) LeaseWidth(want int) *WidthLease {
	s.widthAsks.Add(1)
	if want < 1 {
		want = 1
	}
	l := &WidthLease{s: s, want: want}
	l.grow()
	if 1+l.extra < want {
		s.widthTrims.Add(1)
	}
	s.leases.Add(1)
	return l
}

// grow takes tokens non-blockingly up to the lease's ask. Callers hold
// l.mu (or exclusively own a just-constructed lease).
func (l *WidthLease) grow() {
	for l.extra < l.want-1 {
		select {
		case <-l.s.tokens:
			l.extra++
			l.s.tokensOut.Add(1)
		default:
			return
		}
	}
}

// shed returns every extra token to the pool. Callers hold l.mu.
func (l *WidthLease) shed() {
	if l.extra == 0 {
		return
	}
	l.s.tokensOut.Add(int64(-l.extra))
	for i := 0; i < l.extra; i++ {
		l.s.tokens <- struct{}{}
	}
	l.extra = 0
}

// Reassess re-evaluates the grant against current load and returns the
// effective width to use from here on: when admissions are queued the
// lease degrades to sequential (its extras go back to the pool, where
// the queued scripts' regions can take them), and when the queue is
// empty it regrows toward the original ask from whatever tokens are
// free. Safe to call from the owning job at any frequency.
func (l *WidthLease) Reassess() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return 1
	}
	if l.s.queued.Load() > 0 {
		if l.extra > 0 {
			l.shed()
			l.s.leaseDegrades.Add(1)
		}
	} else if l.extra < l.want-1 {
		before := l.extra
		l.grow()
		if l.extra > before {
			l.s.leaseRestores.Add(1)
		}
	}
	return 1 + l.extra
}

// Width reports the current grant without reassessing it.
func (l *WidthLease) Width() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return 1
	}
	return 1 + l.extra
}

// Release returns the lease's tokens for good. Idempotent.
func (l *WidthLease) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	l.shed()
	l.s.leases.Add(-1)
}

// SchedulerStats is a point-in-time snapshot for metrics export.
type SchedulerStats struct {
	ScriptSlots   int           `json:"script_slots"`
	ActiveScripts int64         `json:"active_scripts"`
	Admitted      int64         `json:"admitted"`
	Waited        int64         `json:"waited"`
	WaitTime      time.Duration `json:"wait_ns"`
	QueueDepth    int64         `json:"queue_depth"`
	QueueLimit    int           `json:"queue_limit,omitempty"`
	QueueWait     time.Duration `json:"queue_wait_ns,omitempty"`
	Sheds         int64         `json:"sheds"`
	// HoldEWMA is the smoothed time one admitted script holds its slot;
	// EstWait is the derived admission-wait prediction behind the
	// Retry-After hint on shed responses.
	HoldEWMA    time.Duration `json:"hold_ewma_ns,omitempty"`
	EstWait     time.Duration `json:"est_wait_ns,omitempty"`
	WidthTokens int           `json:"width_tokens"`
	TokensInUse int64         `json:"tokens_in_use"`
	WidthAsks   int64         `json:"width_asks"`
	WidthTrims  int64         `json:"width_trims"`
	// ActiveLeases counts outstanding long-running width leases;
	// LeaseDegrades/LeaseRestores count their shed/regrow transitions.
	ActiveLeases  int64 `json:"active_leases,omitempty"`
	LeaseDegrades int64 `json:"lease_degrades,omitempty"`
	LeaseRestores int64 `json:"lease_restores,omitempty"`
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	return SchedulerStats{
		ScriptSlots:   s.totalSlots,
		ActiveScripts: s.active.Load(),
		Admitted:      s.admitted.Load(),
		Waited:        s.waited.Load(),
		WaitTime:      time.Duration(s.waitNanos.Load()),
		QueueDepth:    s.queued.Load(),
		QueueLimit:    s.queueLimit,
		QueueWait:     s.queueWait,
		Sheds:         s.sheds.Load(),
		HoldEWMA:      time.Duration(s.holdEWMA.Load()),
		EstWait:       s.EstimateWait(),
		WidthTokens:   s.totalTokens,
		TokensInUse:   s.tokensOut.Load(),
		WidthAsks:     s.widthAsks.Load(),
		WidthTrims:    s.widthTrims.Load(),
		ActiveLeases:  s.leases.Load(),
		LeaseDegrades: s.leaseDegrades.Load(),
		LeaseRestores: s.leaseRestores.Load(),
	}
}
