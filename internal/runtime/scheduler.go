package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is the shared control plane for a multi-tenant process: N
// concurrent script executions share one machine instead of each
// claiming its configured Width worth of goroutines. It implements two
// separate disciplines:
//
//   - Script admission (Admit/release): a bounded semaphore over whole
//     script executions. Admit blocks — this is where backpressure on a
//     saturated machine lives. Only *top-level* entry points (a
//     Session.Run, a daemon request) admit; nested interpreters spawned
//     for command substitution or compound-pipeline stages never do, so
//     admission cannot deadlock against a region the same script is
//     already running.
//
//   - Width tokens (AcquireWidth/release): a pool of data-parallelism
//     tokens sized to the machine. Every region is entitled to run
//     sequentially (width 1) without asking; tokens only pay for the
//     *extra* replicas beyond the first. AcquireWidth never blocks — a
//     region that wants width 8 on a busy machine degrades toward
//     sequential rather than queueing, which keeps pipelines of
//     concurrently-executing stages deadlock-free by construction.
type Scheduler struct {
	slots  chan struct{} // script admission semaphore
	tokens chan struct{} // extra-replica width tokens

	totalSlots  int
	totalTokens int

	// Admission-queue bounds (load shedding). queueLimit caps how many
	// admissions may be blocked waiting at once; queueWait caps how long
	// any one admission may wait. Zero means unbounded (the historical
	// block-forever behaviour). Set before sharing the scheduler.
	queueLimit int
	queueWait  time.Duration

	admitted   atomic.Int64 // scripts admitted so far
	waited     atomic.Int64 // admissions that had to block
	waitNanos  atomic.Int64 // total time spent blocked in Admit
	active     atomic.Int64 // scripts currently admitted
	queued     atomic.Int64 // admissions currently blocked waiting
	sheds      atomic.Int64 // admissions refused by the queue bounds
	tokensOut  atomic.Int64 // width tokens currently held
	widthAsks  atomic.Int64 // AcquireWidth calls
	widthTrims atomic.Int64 // AcquireWidth calls granted less than asked

	leases        atomic.Int64 // WidthLeases currently outstanding
	leaseDegrades atomic.Int64 // leases that shed extras under queue pressure
	leaseRestores atomic.Int64 // leases that regrew after pressure cleared
}

// ErrAdmissionShed is the sentinel every shed admission matches: the
// scheduler refused to queue the script because the admission queue was
// full or the wait deadline passed. Callers (the daemon) translate it
// into backpressure toward the client (HTTP 503 + Retry-After) instead
// of letting queued work pile up without bound.
var ErrAdmissionShed = errors.New("runtime: admission shed")

// ShedError reports why an admission was shed. It matches
// ErrAdmissionShed under errors.Is.
type ShedError struct {
	// Reason is "queue-full" or "deadline".
	Reason string
	// QueueDepth is the number of waiters at shed time.
	QueueDepth int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("runtime: admission shed (%s, %d queued)", e.Reason, e.QueueDepth)
}

// Is makes every ShedError match the ErrAdmissionShed sentinel.
func (e *ShedError) Is(target error) bool { return target == ErrAdmissionShed }

// NewScheduler builds a scheduler with the given width-token pool size;
// tokens <= 0 sizes the pool to the machine (GOMAXPROCS). Script
// admission slots default to the same count; adjust with SetMaxScripts
// before sharing the scheduler.
func NewScheduler(tokens int) *Scheduler {
	if tokens <= 0 {
		tokens = stdruntime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		slots:       make(chan struct{}, tokens),
		tokens:      make(chan struct{}, tokens),
		totalSlots:  tokens,
		totalTokens: tokens,
	}
	for i := 0; i < tokens; i++ {
		s.tokens <- struct{}{}
		s.slots <- struct{}{}
	}
	return s
}

// SetMaxScripts resizes the script-admission semaphore. It must be
// called before the scheduler is shared with runners.
func (s *Scheduler) SetMaxScripts(n int) {
	if n <= 0 {
		n = s.totalTokens
	}
	s.slots = make(chan struct{}, n)
	s.totalSlots = n
	for i := 0; i < n; i++ {
		s.slots <- struct{}{}
	}
}

// SetAdmissionQueue bounds the admission queue: at most limit
// admissions may wait for a slot at once, and none for longer than
// maxWait. Excess or expired admissions fail fast with a *ShedError
// instead of queueing. Zero disables the respective bound. Must be
// called before the scheduler is shared with runners.
func (s *Scheduler) SetAdmissionQueue(limit int, maxWait time.Duration) {
	s.queueLimit = limit
	s.queueWait = maxWait
}

// Admit blocks until a script slot is free (or ctx is done, or the
// admission-queue bounds shed the request) and returns a release
// function. Callers must be top-level script executions.
func (s *Scheduler) Admit(ctx context.Context) (func(), error) {
	start := time.Now()
	select {
	case <-s.slots:
	default:
		depth := s.queued.Add(1)
		if lim := s.queueLimit; lim > 0 && int(depth) > lim {
			s.queued.Add(-1)
			s.sheds.Add(1)
			return nil, &ShedError{Reason: "queue-full", QueueDepth: int(depth) - 1}
		}
		s.waited.Add(1)
		wctx := ctx
		if s.queueWait > 0 {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(ctx, s.queueWait)
			defer cancel()
		}
		select {
		case <-s.slots:
			s.queued.Add(-1)
			s.waitNanos.Add(int64(time.Since(start)))
		case <-wctx.Done():
			depth := s.queued.Add(-1)
			if ctx.Err() == nil {
				// The queue-wait deadline expired, not the caller: shed.
				s.sheds.Add(1)
				return nil, &ShedError{Reason: "deadline", QueueDepth: int(depth)}
			}
			return nil, fmt.Errorf("runtime: admission: %w", ctx.Err())
		}
	}
	// A select with both a free slot and a done context may pick the
	// slot; a caller already cancelled while queued must hand its slot
	// straight back rather than hold it through a doomed execution.
	if err := ctx.Err(); err != nil {
		s.slots <- struct{}{}
		return nil, fmt.Errorf("runtime: admission: %w", err)
	}
	s.admitted.Add(1)
	s.active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.active.Add(-1)
			s.slots <- struct{}{}
		})
	}, nil
}

// AcquireWidth grants an effective parallelism width for one region:
// 1 (always, immediately) plus up to want-1 extra tokens from the pool,
// never blocking. The release function returns the extras.
func (s *Scheduler) AcquireWidth(want int) (int, func()) {
	s.widthAsks.Add(1)
	if want < 1 {
		want = 1
	}
	extra := 0
grab:
	for extra < want-1 {
		select {
		case <-s.tokens:
			extra++
		default:
			break grab
		}
	}
	if 1+extra < want {
		s.widthTrims.Add(1)
	}
	s.tokensOut.Add(int64(extra))
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.tokensOut.Add(int64(-extra))
			for i := 0; i < extra; i++ {
				s.tokens <- struct{}{}
			}
		})
	}
	return 1 + extra, release
}

// WidthLease is a reassessable width grant for long-running jobs. A
// plain AcquireWidth holds its extra tokens until release — fine for a
// region that runs milliseconds, but a streaming job's "region" runs
// forever, and tokens it took at admission time would starve every
// later script down to sequential width for the job's whole lifetime.
// A lease makes the grant revocable at the holder's own safe points:
// the streaming runner calls Reassess at each window boundary, and the
// lease sheds its extra tokens whenever the admission queue is
// non-empty (scripts are waiting — the machine is oversubscribed),
// regrowing toward the requested width once the pressure clears.
type WidthLease struct {
	s    *Scheduler
	want int

	mu    sync.Mutex
	extra int
	done  bool
}

// LeaseWidth grants an effective width like AcquireWidth (1 plus up to
// want-1 extra tokens, never blocking) but returns a revocable lease.
// Call Reassess at safe points to keep the grant honest under load, and
// Release when the job ends.
func (s *Scheduler) LeaseWidth(want int) *WidthLease {
	s.widthAsks.Add(1)
	if want < 1 {
		want = 1
	}
	l := &WidthLease{s: s, want: want}
	l.grow()
	if 1+l.extra < want {
		s.widthTrims.Add(1)
	}
	s.leases.Add(1)
	return l
}

// grow takes tokens non-blockingly up to the lease's ask. Callers hold
// l.mu (or exclusively own a just-constructed lease).
func (l *WidthLease) grow() {
	for l.extra < l.want-1 {
		select {
		case <-l.s.tokens:
			l.extra++
			l.s.tokensOut.Add(1)
		default:
			return
		}
	}
}

// shed returns every extra token to the pool. Callers hold l.mu.
func (l *WidthLease) shed() {
	if l.extra == 0 {
		return
	}
	l.s.tokensOut.Add(int64(-l.extra))
	for i := 0; i < l.extra; i++ {
		l.s.tokens <- struct{}{}
	}
	l.extra = 0
}

// Reassess re-evaluates the grant against current load and returns the
// effective width to use from here on: when admissions are queued the
// lease degrades to sequential (its extras go back to the pool, where
// the queued scripts' regions can take them), and when the queue is
// empty it regrows toward the original ask from whatever tokens are
// free. Safe to call from the owning job at any frequency.
func (l *WidthLease) Reassess() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return 1
	}
	if l.s.queued.Load() > 0 {
		if l.extra > 0 {
			l.shed()
			l.s.leaseDegrades.Add(1)
		}
	} else if l.extra < l.want-1 {
		before := l.extra
		l.grow()
		if l.extra > before {
			l.s.leaseRestores.Add(1)
		}
	}
	return 1 + l.extra
}

// Width reports the current grant without reassessing it.
func (l *WidthLease) Width() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return 1
	}
	return 1 + l.extra
}

// Release returns the lease's tokens for good. Idempotent.
func (l *WidthLease) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	l.shed()
	l.s.leases.Add(-1)
}

// SchedulerStats is a point-in-time snapshot for metrics export.
type SchedulerStats struct {
	ScriptSlots   int           `json:"script_slots"`
	ActiveScripts int64         `json:"active_scripts"`
	Admitted      int64         `json:"admitted"`
	Waited        int64         `json:"waited"`
	WaitTime      time.Duration `json:"wait_ns"`
	QueueDepth    int64         `json:"queue_depth"`
	QueueLimit    int           `json:"queue_limit,omitempty"`
	QueueWait     time.Duration `json:"queue_wait_ns,omitempty"`
	Sheds         int64         `json:"sheds"`
	WidthTokens   int           `json:"width_tokens"`
	TokensInUse   int64         `json:"tokens_in_use"`
	WidthAsks     int64         `json:"width_asks"`
	WidthTrims    int64         `json:"width_trims"`
	// ActiveLeases counts outstanding long-running width leases;
	// LeaseDegrades/LeaseRestores count their shed/regrow transitions.
	ActiveLeases  int64 `json:"active_leases,omitempty"`
	LeaseDegrades int64 `json:"lease_degrades,omitempty"`
	LeaseRestores int64 `json:"lease_restores,omitempty"`
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	return SchedulerStats{
		ScriptSlots:   s.totalSlots,
		ActiveScripts: s.active.Load(),
		Admitted:      s.admitted.Load(),
		Waited:        s.waited.Load(),
		WaitTime:      time.Duration(s.waitNanos.Load()),
		QueueDepth:    s.queued.Load(),
		QueueLimit:    s.queueLimit,
		QueueWait:     s.queueWait,
		Sheds:         s.sheds.Load(),
		WidthTokens:   s.totalTokens,
		TokensInUse:   s.tokensOut.Load(),
		WidthAsks:     s.widthAsks.Load(),
		WidthTrims:    s.widthTrims.Load(),
		ActiveLeases:  s.leases.Load(),
		LeaseDegrades: s.leaseDegrades.Load(),
		LeaseRestores: s.leaseRestores.Load(),
	}
}
