package runtime

import (
	"context"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is the shared control plane for a multi-tenant process: N
// concurrent script executions share one machine instead of each
// claiming its configured Width worth of goroutines. It implements two
// separate disciplines:
//
//   - Script admission (Admit/release): a bounded semaphore over whole
//     script executions. Admit blocks — this is where backpressure on a
//     saturated machine lives. Only *top-level* entry points (a
//     Session.Run, a daemon request) admit; nested interpreters spawned
//     for command substitution or compound-pipeline stages never do, so
//     admission cannot deadlock against a region the same script is
//     already running.
//
//   - Width tokens (AcquireWidth/release): a pool of data-parallelism
//     tokens sized to the machine. Every region is entitled to run
//     sequentially (width 1) without asking; tokens only pay for the
//     *extra* replicas beyond the first. AcquireWidth never blocks — a
//     region that wants width 8 on a busy machine degrades toward
//     sequential rather than queueing, which keeps pipelines of
//     concurrently-executing stages deadlock-free by construction.
type Scheduler struct {
	slots  chan struct{} // script admission semaphore
	tokens chan struct{} // extra-replica width tokens

	totalSlots  int
	totalTokens int

	admitted   atomic.Int64 // scripts admitted so far
	waited     atomic.Int64 // admissions that had to block
	waitNanos  atomic.Int64 // total time spent blocked in Admit
	active     atomic.Int64 // scripts currently admitted
	tokensOut  atomic.Int64 // width tokens currently held
	widthAsks  atomic.Int64 // AcquireWidth calls
	widthTrims atomic.Int64 // AcquireWidth calls granted less than asked
}

// NewScheduler builds a scheduler with the given width-token pool size;
// tokens <= 0 sizes the pool to the machine (GOMAXPROCS). Script
// admission slots default to the same count; adjust with SetMaxScripts
// before sharing the scheduler.
func NewScheduler(tokens int) *Scheduler {
	if tokens <= 0 {
		tokens = stdruntime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		slots:       make(chan struct{}, tokens),
		tokens:      make(chan struct{}, tokens),
		totalSlots:  tokens,
		totalTokens: tokens,
	}
	for i := 0; i < tokens; i++ {
		s.tokens <- struct{}{}
		s.slots <- struct{}{}
	}
	return s
}

// SetMaxScripts resizes the script-admission semaphore. It must be
// called before the scheduler is shared with runners.
func (s *Scheduler) SetMaxScripts(n int) {
	if n <= 0 {
		n = s.totalTokens
	}
	s.slots = make(chan struct{}, n)
	s.totalSlots = n
	for i := 0; i < n; i++ {
		s.slots <- struct{}{}
	}
}

// Admit blocks until a script slot is free (or ctx is done) and returns
// a release function. Callers must be top-level script executions.
func (s *Scheduler) Admit(ctx context.Context) (func(), error) {
	waitedFlag := false
	start := time.Now()
	select {
	case <-s.slots:
	default:
		waitedFlag = true
		s.waited.Add(1)
		select {
		case <-s.slots:
		case <-ctx.Done():
			return nil, fmt.Errorf("runtime: admission: %w", ctx.Err())
		}
	}
	if waitedFlag {
		s.waitNanos.Add(int64(time.Since(start)))
	}
	s.admitted.Add(1)
	s.active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.active.Add(-1)
			s.slots <- struct{}{}
		})
	}, nil
}

// AcquireWidth grants an effective parallelism width for one region:
// 1 (always, immediately) plus up to want-1 extra tokens from the pool,
// never blocking. The release function returns the extras.
func (s *Scheduler) AcquireWidth(want int) (int, func()) {
	s.widthAsks.Add(1)
	if want < 1 {
		want = 1
	}
	extra := 0
grab:
	for extra < want-1 {
		select {
		case <-s.tokens:
			extra++
		default:
			break grab
		}
	}
	if 1+extra < want {
		s.widthTrims.Add(1)
	}
	s.tokensOut.Add(int64(extra))
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.tokensOut.Add(int64(-extra))
			for i := 0; i < extra; i++ {
				s.tokens <- struct{}{}
			}
		})
	}
	return 1 + extra, release
}

// SchedulerStats is a point-in-time snapshot for metrics export.
type SchedulerStats struct {
	ScriptSlots   int           `json:"script_slots"`
	ActiveScripts int64         `json:"active_scripts"`
	Admitted      int64         `json:"admitted"`
	Waited        int64         `json:"waited"`
	WaitTime      time.Duration `json:"wait_ns"`
	WidthTokens   int           `json:"width_tokens"`
	TokensInUse   int64         `json:"tokens_in_use"`
	WidthAsks     int64         `json:"width_asks"`
	WidthTrims    int64         `json:"width_trims"`
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	return SchedulerStats{
		ScriptSlots:   s.totalSlots,
		ActiveScripts: s.active.Load(),
		Admitted:      s.admitted.Load(),
		Waited:        s.waited.Load(),
		WaitTime:      time.Duration(s.waitNanos.Load()),
		WidthTokens:   s.totalTokens,
		TokensInUse:   s.tokensOut.Load(),
		WidthAsks:     s.widthAsks.Load(),
		WidthTrims:    s.widthTrims.Load(),
	}
}
