package runtime

// Per-job resource governance: a JobLimits carries the budgets a single
// script execution may consume, and a Budget is the live accounting
// object that enforces them. The coordinator survives hostile scripts
// because every resource a job can hoard — wall-clock time, output
// bytes, pooled chunk memory queued in pipes, replica goroutines — is
// bounded per job, and a breach cancels only that job with a typed
// error and a distinct exit code, never the process.

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// ExitBudgetExceeded is the exit status of a job cancelled for
// exceeding one of its resource budgets — distinct from both normal
// failures (1) and cancellation (130), so clients and metrics can tell
// "you were over budget" from "you were wrong" or "you were stopped".
const ExitBudgetExceeded = 125

// ErrBudgetExceeded is the sentinel all budget breaches match:
// errors.Is(err, ErrBudgetExceeded) holds for every *BudgetError.
var ErrBudgetExceeded = errors.New("runtime: job resource budget exceeded")

// JobLimits bounds one job's resource consumption. The zero value means
// unlimited everywhere (the historical behaviour).
type JobLimits struct {
	// WallTimeout bounds the job's wall-clock time; past it the job is
	// cancelled with ErrBudgetExceeded. 0 = unlimited.
	WallTimeout time.Duration `json:"wall_timeout_ns,omitempty"`
	// MaxOutputBytes bounds the bytes the job may write to its stdout.
	// 0 = unlimited.
	MaxOutputBytes int64 `json:"max_output_bytes,omitempty"`
	// MaxPipeMemory bounds the pooled chunk payload the job may hold
	// queued across all of its pipes at once — the per-job ceiling that
	// replaces the unbounded global pool for eager buffers. 0 =
	// unlimited.
	MaxPipeMemory int64 `json:"max_pipe_memory,omitempty"`
	// MaxProcs caps the effective parallelism width any of the job's
	// regions may be planned at (its replica-goroutine budget). 0 =
	// unlimited.
	MaxProcs int `json:"max_procs,omitempty"`
	// Sandbox confines the job's file access to its working directory:
	// absolute paths and ".." escapes fail instead of reaching the host
	// filesystem. Required for running untrusted (e.g. fuzz-generated)
	// scripts.
	Sandbox bool `json:"sandbox,omitempty"`
}

// Zero reports whether no limit is set.
func (l JobLimits) Zero() bool { return l == JobLimits{} }

// BudgetError reports which budget a job breached. It matches
// ErrBudgetExceeded under errors.Is.
type BudgetError struct {
	// Resource names the exhausted budget: "wall-clock", "output-bytes",
	// or "pipe-memory".
	Resource string
	// Limit is the configured budget for that resource.
	Limit int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("runtime: job exceeded its %s budget (%d)", e.Resource, e.Limit)
}

// Is makes every BudgetError match the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Budget is one job's live resource accounting, shared by every region
// the job executes (pipes charge queued payload against it, the output
// writer charges delivered bytes). All methods are safe for concurrent
// use; a nil *Budget means unlimited and charges nothing.
type Budget struct {
	limits JobLimits

	pipeBytes atomic.Int64 // payload currently queued across the job's pipes
	pipePeak  atomic.Int64 // high-water mark of pipeBytes
	outBytes  atomic.Int64 // bytes delivered to the job's stdout

	breach atomic.Pointer[BudgetError] // first breach, frozen
}

// NewBudget builds the accounting object for one job. It returns nil
// when the limits are all zero, so the unlimited path stays free.
func NewBudget(l JobLimits) *Budget {
	if l.Zero() {
		return nil
	}
	return &Budget{limits: l}
}

// Limits returns the configured budgets.
func (b *Budget) Limits() JobLimits {
	if b == nil {
		return JobLimits{}
	}
	return b.limits
}

// trip records the first breach and returns the breach to report (the
// first one wins so a cascade of secondary failures stays attributed to
// its root cause).
func (b *Budget) trip(e *BudgetError) *BudgetError {
	if b.breach.CompareAndSwap(nil, e) {
		return e
	}
	return b.breach.Load()
}

// Exceeded returns the job's first budget breach, or nil.
func (b *Budget) Exceeded() *BudgetError {
	if b == nil {
		return nil
	}
	return b.breach.Load()
}

// ChargePipe accounts n bytes of payload entering a pipe queue. It
// fails with a *BudgetError once the job's queued payload would exceed
// MaxPipeMemory.
func (b *Budget) ChargePipe(n int) error {
	if b == nil || n == 0 {
		return nil
	}
	now := b.pipeBytes.Add(int64(n))
	if max := b.limits.MaxPipeMemory; max > 0 && now > max {
		b.pipeBytes.Add(int64(-n))
		return b.trip(&BudgetError{Resource: "pipe-memory", Limit: max})
	}
	for {
		peak := b.pipePeak.Load()
		if now <= peak || b.pipePeak.CompareAndSwap(peak, now) {
			return nil
		}
	}
}

// ReleasePipe returns n bytes of pipe payload to the budget (the block
// was consumed or the pipe abandoned).
func (b *Budget) ReleasePipe(n int) {
	if b == nil || n == 0 {
		return
	}
	b.pipeBytes.Add(int64(-n))
}

// ChargeOutput accounts n bytes delivered to the job's stdout, failing
// once the total exceeds MaxOutputBytes.
func (b *Budget) ChargeOutput(n int) error {
	if b == nil {
		return nil
	}
	now := b.outBytes.Add(int64(n))
	if max := b.limits.MaxOutputBytes; max > 0 && now > max {
		return b.trip(&BudgetError{Resource: "output-bytes", Limit: max})
	}
	return nil
}

// TripWall records a wall-clock budget breach (the job layer owns the
// timer; this just attributes the kill).
func (b *Budget) TripWall() *BudgetError {
	if b == nil {
		return &BudgetError{Resource: "wall-clock"}
	}
	return b.trip(&BudgetError{Resource: "wall-clock", Limit: int64(b.limits.WallTimeout)})
}

// CapWidth applies the MaxProcs budget to a requested region width.
func (b *Budget) CapWidth(w int) int {
	if b == nil {
		return w
	}
	if max := b.limits.MaxProcs; max > 0 && w > max {
		return max
	}
	return w
}

// BudgetUsage is a point-in-time snapshot for metrics rows.
type BudgetUsage struct {
	PipeBytes     int64 `json:"pipe_bytes"`
	PipeBytesPeak int64 `json:"pipe_bytes_peak"`
	OutputBytes   int64 `json:"output_bytes"`
}

// Usage snapshots the budget's live consumption.
func (b *Budget) Usage() BudgetUsage {
	if b == nil {
		return BudgetUsage{}
	}
	return BudgetUsage{
		PipeBytes:     b.pipeBytes.Load(),
		PipeBytesPeak: b.pipePeak.Load(),
		OutputBytes:   b.outBytes.Load(),
	}
}

// LimitWriter wraps a job's stdout so every delivered byte is charged
// against the output budget; on breach the write fails with a
// *BudgetError and onBreach (typically the job's cancel) fires once.
func LimitWriter(w io.Writer, b *Budget, onBreach func()) io.Writer {
	if b == nil || b.limits.MaxOutputBytes <= 0 {
		return w
	}
	return &limitWriter{w: w, b: b, onBreach: onBreach}
}

type limitWriter struct {
	w        io.Writer
	b        *Budget
	onBreach func()
	breached atomic.Bool
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	if err := lw.b.ChargeOutput(len(p)); err != nil {
		if lw.breached.CompareAndSwap(false, true) && lw.onBreach != nil {
			lw.onBreach()
		}
		return 0, err
	}
	return lw.w.Write(p)
}
