// Package runtime executes PaSh dataflow graphs in-process: one
// goroutine per node (the analog of one process per command), bounded
// in-memory FIFOs for edges (the analog of OS pipes), unbounded eager
// buffers implementing the paper's eager relay nodes (§5.2), and the two
// split implementations (§5.2 Splitting Challenges).
package runtime

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDownstreamClosed is returned by Edge writes after the reader has
// gone away — the in-process analog of SIGPIPE/EPIPE. Node failures with
// this cause are treated as clean termination, exactly like a command
// killed by a PIPE signal in a shell pipeline.
var ErrDownstreamClosed = errors.New("runtime: downstream closed the stream")

// pipeBufSize is the default FIFO capacity, matching the Linux pipe
// default of 64 KiB.
const pipeBufSize = 64 * 1024

// pipe is a byte stream with a bounded (or unbounded) buffer. A bounded
// pipe blocks writers when full — lazy, like a UNIX FIFO. max = 0 means
// unbounded: writes never block, which is what the paper's eager relay
// achieves by buffering in the relay process.
//
// Each end can carry a meter: nanoseconds spent blocked in cond.Wait are
// accumulated there, so the executor can compute every node's *active*
// work (wall time minus blocked time) — the input to the multicore
// scheduling simulator.
type pipe struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	off     int // read offset into buf
	max     int // 0 = unbounded
	closedW bool
	closedR bool

	readMeter  *int64 // atomic ns blocked in Read
	writeMeter *int64 // atomic ns blocked in Write
}

func newPipe(max int) *pipe {
	p := &pipe{max: max}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) pending() int { return len(p.buf) - p.off }

// Write appends to the buffer, blocking while a bounded buffer is full.
func (p *pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for len(b) > 0 {
		if p.closedR {
			return written, ErrDownstreamClosed
		}
		if p.closedW {
			return written, errors.New("runtime: write after close")
		}
		space := len(b)
		if p.max > 0 {
			free := p.max - p.pending()
			if free <= 0 {
				p.metered(p.writeMeter)
				continue
			}
			if space > free {
				space = free
			}
		}
		p.compact()
		p.buf = append(p.buf, b[:space]...)
		b = b[space:]
		written += space
		p.cond.Broadcast()
	}
	return written, nil
}

// compact reclaims consumed prefix space when it dominates the buffer.
func (p *pipe) compact() {
	if p.off > 4096 && p.off > len(p.buf)/2 {
		copy(p.buf, p.buf[p.off:])
		p.buf = p.buf[:p.pending()]
		p.off = 0
	}
}

// Read consumes buffered bytes, blocking while the pipe is open and
// empty.
func (p *pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closedR {
			return 0, io.ErrClosedPipe
		}
		if n := p.pending(); n > 0 {
			c := copy(b, p.buf[p.off:])
			p.off += c
			if p.pending() == 0 && p.closedW {
				// Allow the buffer to be reclaimed early.
				p.buf = nil
				p.off = 0
			}
			p.cond.Broadcast()
			return c, nil
		}
		if p.closedW {
			return 0, io.EOF
		}
		p.metered(p.readMeter)
	}
}

// metered waits on the pipe's condition, charging the blocked time to
// the given meter when one is attached.
func (p *pipe) metered(meter *int64) {
	if meter == nil {
		p.cond.Wait()
		return
	}
	start := time.Now()
	p.cond.Wait()
	atomic.AddInt64(meter, int64(time.Since(start)))
}

// CloseWrite signals EOF to the reader.
func (p *pipe) CloseWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closedW = true
	p.cond.Broadcast()
}

// CloseRead abandons the stream: subsequent writes fail with
// ErrDownstreamClosed (the SIGPIPE analog) and buffered data is dropped.
func (p *pipe) CloseRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closedR = true
	p.buf = nil
	p.off = 0
	p.cond.Broadcast()
}

// edgeStream packages the two ends of an edge.
type edgeStream struct {
	p *pipe
}

func newEdgeStream(eager bool, blockingEagerMax int) *edgeStream {
	switch {
	case blockingEagerMax > 0:
		return &edgeStream{p: newPipe(blockingEagerMax)}
	case eager:
		return &edgeStream{p: newPipe(0)}
	default:
		return &edgeStream{p: newPipe(pipeBufSize)}
	}
}

// writer returns the write end (Close = CloseWrite).
func (s *edgeStream) writer() io.WriteCloser { return writeEnd{s.p} }

// reader returns the read end (Close = CloseRead).
func (s *edgeStream) reader() io.ReadCloser { return readEnd{s.p} }

type writeEnd struct{ p *pipe }

func (w writeEnd) Write(b []byte) (int, error) { return w.p.Write(b) }
func (w writeEnd) Close() error                { w.p.CloseWrite(); return nil }

type readEnd struct{ p *pipe }

func (r readEnd) Read(b []byte) (int, error) { return r.p.Read(b) }
func (r readEnd) Close() error               { r.p.CloseRead(); return nil }
