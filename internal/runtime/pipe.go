// Package runtime executes PaSh dataflow graphs in-process: one
// goroutine per node (the analog of one process per command), bounded
// in-memory FIFOs for edges (the analog of OS pipes), unbounded eager
// buffers implementing the paper's eager relay nodes (§5.2), and the
// split implementations (§5.2 Splitting Challenges).
//
// Edges move data as whole blocks. A pipe is a bounded (or unbounded)
// queue of []byte chunks recycled through the shared block pool: the
// fast path (WriteChunk/ReadChunk) transfers ownership of a block from
// producer to consumer without copying a byte, while the io.Writer and
// io.Reader faces stage bytes into pooled blocks for commands that speak
// plain streams. See internal/runtime/README.md for the ownership
// contract.
package runtime

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/commands"
)

// ErrDownstreamClosed is returned by Edge writes after the reader has
// gone away — the in-process analog of SIGPIPE/EPIPE. Node failures with
// this cause are treated as clean termination, exactly like a command
// killed by a PIPE signal in a shell pipeline.
var ErrDownstreamClosed = errors.New("runtime: downstream closed the stream")

// pipeBufSize is the default FIFO capacity, matching the Linux pipe
// default of 64 KiB.
const pipeBufSize = 64 * 1024

// pipe is a byte stream carried as a bounded (or unbounded) FIFO of
// blocks. A bounded pipe blocks writers when the queued payload reaches
// max — lazy, like a UNIX FIFO. max = 0 means unbounded: writes never
// block, which is what the paper's eager relay achieves by buffering in
// the relay process.
//
// Chunk boundaries are preserved: a block enqueued with WriteChunk is
// dequeued whole by ReadChunk, including zero-length blocks (the framing
// tokens of the round-robin split protocol). The byte-oriented Read
// simply skips empty blocks, so byte consumers never observe frames.
//
// Each end can carry a meter: nanoseconds spent blocked waiting are
// accumulated there, so the executor can compute every node's *active*
// work (wall time minus blocked time) — the input to the multicore
// scheduling simulator.
type pipe struct {
	mu    sync.Mutex
	rwait sync.Cond // readers wait here while the queue is empty
	wwait sync.Cond // writers wait here while a bounded queue is full

	blocks  [][]byte
	off     int // read offset into blocks[0]
	size    int // unread payload bytes across all blocks
	max     int // 0 = unbounded
	closedW bool
	closedR bool

	readMeter  *int64 // atomic ns blocked in reads
	writeMeter *int64 // atomic ns blocked in writes

	// budget, when set, charges queued payload against the owning job's
	// pipe-memory ceiling: enqueues charge, consumption releases. This
	// is what bounds a job's eager (unbounded) buffers — the global
	// block pool no longer is the only line of defense.
	budget *Budget

	// traffic, when set, mirrors every enqueue into the owning job's
	// live meter, so observers see bytes/chunks moved while the graph is
	// still running (bytesMoved/chunksMoved are only summed at the end).
	traffic *Traffic

	bytesMoved  int64 // total payload bytes ever enqueued (under mu)
	chunksMoved int64 // total blocks ever enqueued (under mu)
}

func newPipe(max int) *pipe {
	p := &pipe{max: max}
	p.rwait.L = &p.mu
	p.wwait.L = &p.mu
	return p
}

// metered waits on the given condition, charging the blocked time to the
// meter when one is attached.
func (p *pipe) metered(c *sync.Cond, meter *int64) {
	if meter == nil {
		c.Wait()
		return
	}
	start := time.Now()
	c.Wait()
	atomic.AddInt64(meter, int64(time.Since(start)))
}

// enqueue appends an owned block and wakes one reader. Callers hold mu.
func (p *pipe) enqueue(b []byte) {
	p.blocks = append(p.blocks, b)
	p.size += len(b)
	p.bytesMoved += int64(len(b))
	p.chunksMoved++
	p.traffic.note(len(b))
	p.rwait.Signal()
}

// waitWritable blocks until a bounded pipe has room (or either end is
// closed). Callers hold mu.
func (p *pipe) waitWritable() error {
	for {
		if p.closedR {
			return ErrDownstreamClosed
		}
		if p.closedW {
			return errors.New("runtime: write after close")
		}
		if p.max == 0 || p.size < p.max {
			return nil
		}
		p.metered(&p.wwait, p.writeMeter)
	}
}

// WriteChunk transfers ownership of b into the pipe without copying.
// After it returns the caller must not touch b. Zero-length chunks are
// enqueued as distinct framing tokens. On error the block has been
// recycled.
func (p *pipe) WriteChunk(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.waitWritable(); err != nil {
		commands.PutBlock(b)
		return err
	}
	if err := p.budget.ChargePipe(len(b)); err != nil {
		commands.PutBlock(b)
		return err
	}
	p.enqueue(b)
	return nil
}

// Write copies b into pooled blocks, blocking while a bounded buffer is
// full. Small writes coalesce into the queue's tail block.
func (p *pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for {
		// Coalesce into the tail block when it has room; the tail is
		// owned by the queue until dequeued, so appending under mu is
		// safe.
		if len(b) > 0 && len(p.blocks) > 0 && !p.closedR && !p.closedW {
			tail := p.blocks[len(p.blocks)-1]
			if room := cap(tail) - len(tail); room > 0 && (p.max == 0 || p.size < p.max) {
				n := len(b)
				if n > room {
					n = room
				}
				if err := p.budget.ChargePipe(n); err != nil {
					return written, err
				}
				p.blocks[len(p.blocks)-1] = append(tail, b[:n]...)
				p.size += n
				p.bytesMoved += int64(n)
				b = b[n:]
				written += n
				p.rwait.Signal()
			}
		}
		if len(b) == 0 {
			return written, nil
		}
		if err := p.waitWritable(); err != nil {
			return written, err
		}
		n := len(b)
		if n > commands.BlockSize {
			n = commands.BlockSize
		}
		if p.max > 0 {
			if free := p.max - p.size; n > free {
				n = free
			}
		}
		if err := p.budget.ChargePipe(n); err != nil {
			return written, err
		}
		blk := append(commands.GetBlock(), b[:n]...)
		p.enqueue(blk)
		b = b[n:]
		written += n
	}
}

// dropHead recycles and removes the fully-consumed head block. Callers
// hold mu.
func (p *pipe) dropHead() {
	commands.PutBlock(p.blocks[0])
	p.blocks[0] = nil
	p.blocks = p.blocks[1:]
	p.off = 0
}

// Read consumes buffered bytes, blocking while the pipe is open and
// empty. A single call drains as many queued blocks as fit in b.
func (p *pipe) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closedR {
			return 0, io.ErrClosedPipe
		}
		// Skip framing tokens so byte consumers never see them.
		for len(p.blocks) > 0 && p.off >= len(p.blocks[0]) {
			p.dropHead()
		}
		if p.size > 0 && len(b) > 0 {
			read := 0
			for read < len(b) && len(p.blocks) > 0 {
				head := p.blocks[0]
				c := copy(b[read:], head[p.off:])
				read += c
				p.off += c
				p.size -= c
				if p.off >= len(head) {
					p.dropHead()
				}
			}
			p.budget.ReleasePipe(read)
			p.wwait.Signal()
			return read, nil
		}
		if p.closedW {
			return 0, io.EOF
		}
		p.metered(&p.rwait, p.readMeter)
	}
}

// ReadChunk dequeues the next whole block, transferring its ownership to
// the caller. The release function recycles the block's backing array;
// call it exactly once when done, or never if ownership moves onward.
// Returns io.EOF after the writer closes and the queue drains.
func (p *pipe) ReadChunk() ([]byte, func(), error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closedR {
			return nil, func() {}, io.ErrClosedPipe
		}
		if len(p.blocks) > 0 {
			head := p.blocks[0]
			payload := head[p.off:]
			p.blocks[0] = nil
			p.blocks = p.blocks[1:]
			p.off = 0
			p.size -= len(payload)
			p.budget.ReleasePipe(len(payload))
			p.wwait.Signal()
			release := func() { commands.PutBlock(head) }
			return payload, release, nil
		}
		if p.closedW {
			return nil, func() {}, io.EOF
		}
		p.metered(&p.rwait, p.readMeter)
	}
}

// CloseWrite signals EOF to the reader.
func (p *pipe) CloseWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closedW = true
	p.rwait.Broadcast()
	p.wwait.Broadcast()
}

// CloseRead abandons the stream: subsequent writes fail with
// ErrDownstreamClosed (the SIGPIPE analog) and buffered blocks are
// recycled.
func (p *pipe) CloseRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closedR = true
	for _, b := range p.blocks {
		commands.PutBlock(b)
	}
	p.budget.ReleasePipe(p.size)
	p.blocks = nil
	p.off = 0
	p.size = 0
	p.rwait.Broadcast()
	p.wwait.Broadcast()
}

// moved reports the pipe's lifetime traffic: payload bytes and chunk
// count ever enqueued.
func (p *pipe) moved() (bytes, chunks int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesMoved, p.chunksMoved
}

// edgeStream packages the two ends of an edge.
type edgeStream struct {
	p *pipe
}

func newEdgeStream(eager bool, blockingEagerMax int) *edgeStream {
	switch {
	case blockingEagerMax > 0:
		return &edgeStream{p: newPipe(blockingEagerMax)}
	case eager:
		return &edgeStream{p: newPipe(0)}
	default:
		return &edgeStream{p: newPipe(pipeBufSize)}
	}
}

// writer returns the write end (Close = CloseWrite).
func (s *edgeStream) writer() io.WriteCloser { return writeEnd{s.p} }

// reader returns the read end (Close = CloseRead).
func (s *edgeStream) reader() io.ReadCloser { return readEnd{s.p} }

type writeEnd struct{ p *pipe }

func (w writeEnd) Write(b []byte) (int, error) { return w.p.Write(b) }
func (w writeEnd) WriteChunk(b []byte) error   { return w.p.WriteChunk(b) }
func (w writeEnd) Close() error                { w.p.CloseWrite(); return nil }

type readEnd struct{ p *pipe }

func (r readEnd) Read(b []byte) (int, error)         { return r.p.Read(b) }
func (r readEnd) ReadChunk() ([]byte, func(), error) { return r.p.ReadChunk() }
func (r readEnd) Close() error                       { r.p.CloseRead(); return nil }

// Compile-time checks: the edge ends speak the chunk protocol.
var (
	_ commands.ChunkWriter = writeEnd{}
	_ commands.ChunkReader = readEnd{}
)
