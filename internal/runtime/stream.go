package runtime

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/commands"
	"repro/internal/dfg"
)

// This file interprets the streamed remote-spec shapes (contiguous
// per-branch streams, see dfg.RemoteSpec.Streamed) over plain byte
// streams. It is shared by the dist worker's /exec handler — which
// demultiplexes wire frames into one io.Reader per input — and the
// pool's local failover path, which replays retained input through the
// same functions so the bytes match whatever the dead worker would
// have produced.

// ExecStreamSpec runs a streamed remote spec over whole byte streams:
// a linear chain consumes ins[0] through its stages; an aggregation
// subtree (spec.Agg != nil) runs one branch per input and combines the
// branch outputs through the aggregate stage. Per-stream non-zero exit
// statuses are normal and ignored, matching StageChain.Stream.
func ExecStreamSpec(ctx context.Context, reg *commands.Registry, spec *dfg.RemoteSpec, ins []io.Reader, out io.Writer, dir string, env map[string]string, stderr io.Writer) error {
	if !spec.Streamed {
		return errors.New("runtime: spec is not streamed")
	}
	if spec.Agg != nil {
		return ExecStreamTree(ctx, reg, spec, ins, out, dir, env, stderr)
	}
	if len(ins) != 1 {
		return fmt.Errorf("runtime: streamed chain wants 1 input, got %d", len(ins))
	}
	chain, err := NewStageChain(reg, spec.Stages, dir, env, stderr)
	if err != nil {
		return err
	}
	return chain.Stream(ins[0], out)
}

// ExecStreamTree runs a streamed aggregation subtree: branch i's stage
// chain consumes ins[i] into an eager in-process edge stream, and the
// aggregate stage combines the branch outputs as ordered virtual-file
// operands — exactly how a local KindAgg node consumes its inputs, so
// the worker-side and coordinator-side interpretations are
// byte-identical. Branch buffers are eager (unbounded) because the
// wire delivers input streams sequentially: branch 0 may finish before
// branch 1 has a single byte, and a blocking buffer would deadlock the
// aggregate against the demultiplexer.
func ExecStreamTree(ctx context.Context, reg *commands.Registry, spec *dfg.RemoteSpec, ins []io.Reader, out io.Writer, dir string, env map[string]string, stderr io.Writer) error {
	if len(ins) != len(spec.Branches) {
		return fmt.Errorf("runtime: streamed tree wants %d inputs, got %d", len(spec.Branches), len(ins))
	}
	if spec.Agg == nil || spec.Agg.Name == "" {
		return errors.New("runtime: streamed tree has no aggregate stage")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if stderr == nil {
		stderr = io.Discard
	}
	streams := make([]*edgeStream, len(ins))
	names := make([]string, len(ins))
	for i := range ins {
		streams[i] = newEdgeStream(true, 0)
		names[i] = fmt.Sprintf("%stree/%d", commands.VirtualStreamPrefix, i)
	}
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		i, in := i, in
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := streams[i].writer()
			errs[i] = func() (err error) {
				defer Contain(fmt.Sprintf("stream branch %d", i), &err)
				if len(spec.Branches[i]) == 0 {
					_, err := io.Copy(w, in)
					return err
				}
				chain, err := NewStageChain(reg, spec.Branches[i], dir, env, stderr)
				if err != nil {
					return err
				}
				return chain.Stream(in, w)
			}()
			w.Close()
		}()
	}
	fs := &streamFS{base: commands.OSFS{Dir: dir}, streams: make(map[string]io.ReadCloser, len(ins))}
	args := make([]string, 0, len(spec.Agg.Args)+len(ins))
	args = append(args, spec.Agg.Args...)
	for i := range ins {
		fs.streams[names[i]] = streams[i].reader()
		args = append(args, names[i])
	}
	cctx := &commands.Context{
		Args:   args,
		Stdin:  bytes.NewReader(nil),
		Stdout: out,
		Stderr: stderr,
		FS:     fs,
		Env:    env,
	}
	aggErr := func() (err error) {
		defer Contain("stream agg "+spec.Agg.Name, &err)
		return reg.Run(spec.Agg.Name, cctx)
	}()
	// Hang up on any branch still writing (the aggregate may have
	// stopped early); downstream-closed terminations are clean.
	for i := range ins {
		streams[i].reader().Close()
	}
	wg.Wait()
	if aggErr != nil {
		var ee *commands.ExitError
		if !errors.As(aggErr, &ee) {
			return aggErr
		}
	}
	for _, err := range errs {
		if err != nil && !isCleanTermination(err) {
			return err
		}
	}
	return nil
}

// streamFS resolves a streamed tree's virtual operand names to the
// live branch outputs and passes everything else through to the real
// filesystem — the worker-side analog of the executor's overlayFS.
type streamFS struct {
	base    commands.OSFS
	streams map[string]io.ReadCloser
}

func (s *streamFS) Open(path string) (io.ReadCloser, error) {
	if r, ok := s.streams[path]; ok {
		return r, nil
	}
	if strings.HasPrefix(path, commands.VirtualStreamPrefix) {
		return nil, fmt.Errorf("runtime: unknown stream %s", path)
	}
	return s.base.Open(path)
}

func (s *streamFS) Create(path string) (io.WriteCloser, error) {
	if strings.HasPrefix(path, commands.VirtualStreamPrefix) {
		return nil, fmt.Errorf("runtime: cannot create stream %s", path)
	}
	return s.base.Create(path)
}

func (s *streamFS) Append(path string) (io.WriteCloser, error) {
	if strings.HasPrefix(path, commands.VirtualStreamPrefix) {
		return nil, fmt.Errorf("runtime: cannot append to stream %s", path)
	}
	return s.base.Append(path)
}

// ChunkReaderAsReader adapts a chunk-framed stream to a plain
// io.Reader for the streamed local-interpretation paths. When the
// source already reads bytes (the executor's edge streams do), it is
// returned as-is so chunk framing survives for the fused fast path;
// otherwise the adapter buffers partial chunks and still exposes
// ReadChunk for consumers that probe for it.
func ChunkReaderAsReader(cr commands.ChunkReader) io.Reader {
	if r, ok := cr.(io.Reader); ok {
		return r
	}
	return &chunkStreamReader{cr: cr}
}

type chunkStreamReader struct {
	cr      commands.ChunkReader
	buf     []byte
	release func()
}

func (r *chunkStreamReader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		r.drop()
		b, rel, err := r.cr.ReadChunk()
		if err != nil {
			return 0, err
		}
		r.buf, r.release = b, rel
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	if len(r.buf) == 0 {
		r.drop()
	}
	return n, nil
}

// ReadChunk passes framing through when no partial chunk is buffered;
// a buffered remainder is handed off as one owned chunk.
func (r *chunkStreamReader) ReadChunk() ([]byte, func(), error) {
	if len(r.buf) > 0 {
		blk := append(commands.GetBlock(), r.buf...)
		r.buf = nil
		r.drop()
		return blk, func() { commands.PutBlock(blk) }, nil
	}
	return r.cr.ReadChunk()
}

func (r *chunkStreamReader) drop() {
	if r.release != nil {
		r.release()
		r.release = nil
	}
}
