package core

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/annot"
	"repro/internal/dfg"
	"repro/internal/shell"
)

// Stage is one fully-expanded pipeline stage: concrete command name,
// argv, and resolved redirections.
type Stage struct {
	Name   string
	Args   []string
	Redirs []Redir
}

// Redir is a resolved redirection.
type Redir struct {
	N      int // -1 = operator default
	Op     shell.RedirOp
	Target string
	// Body is the heredoc payload for RedirHeredoc, already expanded
	// when the delimiter was unquoted.
	Body string
}

// RegionIO binds a region's outer streams.
type RegionIO struct {
	// Stdin names the file feeding the region, "" meaning the script's
	// standard input.
	StdinFile string
	// Stdout names the file the region writes, "" meaning the script's
	// standard output; Append marks >>.
	StdoutFile string
	Append     bool
}

// CompilePipeline lifts one parallelizable region — a pipeline of
// concrete stages — into a dataflow graph (§5.1 Translation Pass). Every
// stage becomes a node (even E-class ones, which simply never
// parallelize); stream operands become ordered input edges.
func (c *Compiler) CompilePipeline(stages []Stage, io RegionIO) (*dfg.Graph, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: empty pipeline")
	}
	g := dfg.New()
	// prevOut is the dangling pipe from the previous stage.
	var prevOut *dfg.Edge

	for si, st := range stages {
		inv := c.Annot.Classify(st.Name, st.Args)
		node := dfg.NewNode(dfg.KindCommand, st.Name, nil, inv.Class)

		// Per-stage redirections override the ambient bindings.
		stdinFile, stdoutFile := "", ""
		stdoutAppend := false
		stdinHeredoc := false
		stdinBody := ""
		for _, r := range st.Redirs {
			switch {
			case r.Op == shell.RedirIn && (r.N < 0 || r.N == 0):
				stdinFile = r.Target
				stdinHeredoc = false
			case r.Op == shell.RedirHeredoc && (r.N < 0 || r.N == 0):
				stdinHeredoc, stdinBody = true, r.Body
				stdinFile = ""
			case r.Op == shell.RedirOut && (r.N < 0 || r.N == 1):
				stdoutFile = r.Target
			case r.Op == shell.RedirAppend && (r.N < 0 || r.N == 1):
				stdoutFile, stdoutAppend = r.Target, true
			default:
				return nil, fmt.Errorf("core: unsupported redirection %s on %s", r.Op, st.Name)
			}
		}

		// Work out the node's input edges in consumption order.
		// Stream operands become placeholders; the rest stay literal.
		streamPaths := map[int]int{} // arg index -> input edge order
		order := 0
		hasStdin := false
		operandArgIdx := operandIndexes(st.Args, inv)
		for _, in := range inv.Inputs {
			switch in.Kind {
			case annot.StreamStdin:
				hasStdin = true
				order++ // reserve the slot; stdin handled below
			case annot.StreamFile:
				idx, ok := takeOperand(operandArgIdx, in.Path, st.Args)
				if !ok {
					return nil, fmt.Errorf("core: cannot locate operand %q of %s", in.Path, st.Name)
				}
				streamPaths[idx] = order
				order++
			}
		}
		// Mid-pipeline stages with no declared inputs still consume the
		// incoming pipe (conservative: most commands read stdin).
		if !hasStdin && len(inv.Inputs) == 0 && (si > 0 || stdinFile != "" || stdinHeredoc) {
			hasStdin = true
		}

		// Build the argv template.
		for i, a := range st.Args {
			if ord, ok := streamPaths[i]; ok {
				node.Args = append(node.Args, dfg.InArg(ord))
				continue
			}
			node.Args = append(node.Args, dfg.Lit(a))
		}
		g.AddNode(node)

		// Wire input edges in consumption order.
		node.In = make([]*dfg.Edge, order)
		stdinSlot := -1
		slot := 0
		for _, in := range inv.Inputs {
			switch in.Kind {
			case annot.StreamStdin:
				stdinSlot = slot
				slot++
			case annot.StreamFile:
				e := g.AddEdge(&dfg.Edge{Source: dfg.Binding{Kind: dfg.BindFile, Path: in.Path}, To: node})
				node.In[slot] = e
				slot++
			}
		}
		if hasStdin && stdinSlot < 0 {
			// Synthesized stdin consumption (undeclared-input command).
			e := &dfg.Edge{To: node}
			g.AddEdge(e)
			node.In = append(node.In, e)
			stdinSlot = len(node.In) - 1
		}
		node.StdinInput = stdinSlot

		// Bind the stdin slot.
		if stdinSlot >= 0 && node.In[stdinSlot] == nil {
			e := &dfg.Edge{To: node}
			g.AddEdge(e)
			node.In[stdinSlot] = e
		}
		if stdinSlot >= 0 {
			e := node.In[stdinSlot]
			switch {
			case stdinHeredoc:
				e.Source = dfg.Binding{Kind: dfg.BindLiteral, Data: stdinBody}
				// The incoming pipe, if any, goes unread.
				if si > 0 && prevOut != nil {
					prevOut.Sink = dfg.Binding{Kind: dfg.BindNone}
					prevOut = nil
				}
			case stdinFile != "":
				e.Source = dfg.Binding{Kind: dfg.BindFile, Path: stdinFile}
				// The incoming pipe, if any, goes unread.
				if si > 0 && prevOut != nil {
					prevOut.Sink = dfg.Binding{Kind: dfg.BindNone}
					prevOut = nil
				}
			case si > 0:
				if prevOut == nil {
					// Previous stage redirected its stdout to a file;
					// the pipe delivers EOF immediately.
					e.Source = dfg.Binding{Kind: dfg.BindNone}
				} else {
					e.From = prevOut.From
					// Replace the dangling edge with this one.
					replaceDangling(g, prevOut, e)
					prevOut = nil
				}
			case io.StdinFile != "":
				e.Source = dfg.Binding{Kind: dfg.BindFile, Path: io.StdinFile}
			default:
				e.Source = dfg.Binding{Kind: dfg.BindStdin}
			}
		} else if si > 0 && prevOut != nil {
			// This stage ignores the incoming pipe entirely.
			prevOut.Sink = dfg.Binding{Kind: dfg.BindNone}
			prevOut = nil
		}

		// Attach the aggregator for parallelizable pure commands.
		if inv.Class == annot.Pure {
			flagLits := literalArgs(node)
			if spec, ok := c.resolveAgg(st.Name, flagLits, inv); ok {
				node.Agg = spec
			}
		}

		// Output edge: pipe to next stage, or the stage's redirect, or
		// the region binding for the last stage.
		out := &dfg.Edge{From: node}
		g.AddEdge(out)
		node.Out = append(node.Out, out)
		switch {
		case stdoutFile != "":
			out.Sink = dfg.Binding{Kind: dfg.BindFile, Path: stdoutFile, Append: stdoutAppend}
			prevOut = nil
		case si == len(stages)-1:
			if io.StdoutFile != "" {
				out.Sink = dfg.Binding{Kind: dfg.BindFile, Path: io.StdoutFile, Append: io.Append}
			} else {
				out.Sink = dfg.Binding{Kind: dfg.BindStdout}
			}
			prevOut = nil
		default:
			prevOut = out
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: compiled graph invalid: %w", err)
	}
	return g, nil
}

// replaceDangling rewires the producer of old to produce into e, and
// drops old from the graph.
func replaceDangling(g *dfg.Graph, old, e *dfg.Edge) {
	from := old.From
	e.From = from
	for i, oe := range from.Out {
		if oe == old {
			from.Out[i] = e
		}
	}
	old.From = nil
	g.RemoveDetachedEdge(old)
}

// operandIndexes maps each operand (in operand order) to its argv index.
func operandIndexes(args []string, inv *annot.Invocation) []int {
	// Re-derive the operand positions by matching the OptionSet's
	// operand list against argv left to right.
	idxs := make([]int, 0, len(inv.Opts.Operands))
	next := 0
	for _, op := range inv.Opts.Operands {
		for i := next; i < len(args); i++ {
			if args[i] == op {
				idxs = append(idxs, i)
				next = i + 1
				break
			}
		}
	}
	return idxs
}

// takeOperand finds the argv index of the given operand path, consuming
// matches left to right so repeated paths resolve in order.
func takeOperand(operandIdxs []int, path string, args []string) (int, bool) {
	for i, idx := range operandIdxs {
		if idx >= 0 && args[idx] == path {
			operandIdxs[i] = -1
			return idx, true
		}
	}
	return 0, false
}

// literalArgs extracts the literal (non-placeholder) args of a node —
// its flags and config operands.
func literalArgs(n *dfg.Node) []string {
	var out []string
	for _, a := range n.Args {
		if a.InputIdx < 0 {
			out = append(out, a.Text)
		}
	}
	return out
}

// resolveAgg picks the (map, aggregate) pair for a pure invocation.
// User-registered commands consult the command registry's external
// aggregator specs — a user implementation shadows any builtin pair of
// the same name, which would describe the replaced command — while
// builtins keep using the agg library. Nil MapArgs/AggArgs in an
// external spec default to the invocation's own flags (the sort /
// sort -m convention), and an empty MapName means the command maps
// itself.
func (c *Compiler) resolveAgg(name string, flagLits []string, inv *annot.Invocation) (*dfg.AggSpec, bool) {
	if c.Cmds.IsCustom(name) {
		as, ok := c.Cmds.AggFor(name)
		if !ok {
			return nil, false
		}
		spec := &dfg.AggSpec{
			MapName:     as.MapName,
			MapArgs:     as.MapArgs,
			AggName:     as.AggName,
			AggArgs:     as.AggArgs,
			Associative: as.Associative,
			StopsEarly:  as.StopsEarly,
		}
		if spec.MapName == "" {
			spec.MapName = name
		}
		if spec.MapArgs == nil {
			spec.MapArgs = flagLits
		}
		if spec.AggArgs == nil {
			spec.AggArgs = flagLits
		}
		return spec, true
	}
	return agg.Resolve(name, flagLits, inv)
}

// Optimize applies the parallelization transformations in place.
func (c *Compiler) Optimize(g *dfg.Graph) {
	dfg.Apply(g, c.dfgOptions())
}

// OptimizeForEmission applies the transformations with the barrier split
// forced and stage fusion off: emitted scripts run real processes with
// no chunk framing, so the streaming round-robin split (whose outputs
// interleave the input) cannot be reassembled there, and a fused node
// has no shell rendering (its kernels exist only in-process).
func (c *Compiler) OptimizeForEmission(g *dfg.Graph) {
	opts := c.dfgOptions()
	opts.SplitMode = dfg.SplitGeneral
	opts.DisableFusion = true
	dfg.Apply(g, opts)
}
