package core

import (
	"fmt"
	"strings"
)

// Dot renders the plan as one Graphviz document: each compiled region
// becomes a cluster showing its optimized dataflow graph (fused stages,
// split strategy, aggregation-tree shape), and verbatim items appear as
// dashed boxes in plan order. Feed it to `dot -Tsvg` to see what the
// planner actually built — the debugging view behind `pash -graph`.
func (p *Plan) Dot() string {
	var b strings.Builder
	b.WriteString("digraph pash {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"monospace\", fontsize=10];\n")
	b.WriteString("  compound=true;\n")
	for i, item := range p.Items {
		if item.Graph == nil {
			label := strings.TrimSpace(item.Verbatim)
			if item.Background {
				label += " &"
			}
			fmt.Fprintf(&b, "  v%d [label=%q, shape=box, style=dashed];\n", i, label)
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(&b, "    label=\"region %d\";\n    color=gray60;\n", i)
		item.Graph.WriteDot(&b, "    ", fmt.Sprintf("r%d_", i))
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
