package core

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runtime"
)

func writeBenchCorpus(b *testing.B, dir string) {
	b.Helper()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte(corpus(200)), 0o644); err != nil {
		b.Fatal(err)
	}
}

func benchRunScript(b *testing.B, c *Compiler, src, dir string) {
	b.Helper()
	var out bytes.Buffer
	in := NewInterp(c, dir, nil, runtime.StdIO{Stdin: strings.NewReader(""), Stdout: &out, Stderr: io.Discard})
	if _, err := in.RunScript(context.Background(), src); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPlanCache measures per-iteration control-plane cost for the
// loop body `cut | grep | sort | wc` at width 8: Cold compiles and
// optimizes every iteration (the seed behaviour); Cached pays one
// fingerprint + LRU lookup + template clone. The acceptance bar for
// this PR is Cold/Cached >= 5x.
func BenchmarkPlanCache(b *testing.B) {
	stages := fixedPipelineStages()

	b.Run("Cold", func(b *testing.B) {
		c := NewCompiler(DefaultOptions(8))
		c.Plans = nil
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.planRegion(stages, regionKey(stages), 8); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Cached", func(b *testing.B) {
		c := NewCompiler(DefaultOptions(8))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.planRegion(stages, regionKey(stages), 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCacheEndToEnd runs the whole interpreter on a
// 1000-iteration fixed-pipeline loop, cache on vs off — the user-visible
// version of BenchmarkPlanCache (execution time included).
func BenchmarkPlanCacheEndToEnd(b *testing.B) {
	dir := b.TempDir()
	writeBenchCorpus(b, dir)
	src := fixedLoopScript(1000)
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCompiler(DefaultOptions(8))
			c.Plans = nil
			benchRunScript(b, c, src, dir)
		}
	})
	b.Run("Cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCompiler(DefaultOptions(8))
			benchRunScript(b, c, src, dir)
		}
	})
}
