package core

// Streaming plan support: PlanStream classifies a single pipeline for
// windowed execution over an unbounded input, and StreamPlan runs it
// one window at a time. The micro-batch design keeps every layer of
// the batch stack on the hot path unchanged — each window is a normal
// region execution through the plan cache (a hit costs one clone), the
// scheduler, and the distributed worker plane — while the dfg window
// operator carries the composition contract between windows. The
// cumulative fold runs the same associative aggregate commands the
// agg-tree fan-in uses (pash-agg-wc, sort -m, pash-agg-uniq, ...), so
// "windowed aggregation" is literally the agg tree extended in time:
// level k merges replicas within a window, the fold merges windows.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/dfg"
	"repro/internal/runtime"
	"repro/internal/shell"
)

// ErrNotStreamable marks scripts PlanStream rejects: anything that is
// not a single pipeline whose stages are stateless except for an
// associative aggregation tail. Callers (pash-serve) turn it into a
// 400 instead of a runtime failure.
var ErrNotStreamable = errors.New("core: script is not streamable")

// notStreamable builds a reasoned ErrNotStreamable.
func notStreamable(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrNotStreamable, fmt.Sprintf(format, args...))
}

// StreamPlan is a compiled streaming pipeline: the expanded stages,
// their region fingerprint, and the window operator spec. One plan
// serves every window of one streaming job. The exported fields bind
// per-job execution state; set them before the first RunWindow.
type StreamPlan struct {
	c      *Compiler
	stages []Stage
	rkey   string
	dir    string
	env    map[string]string
	window dfg.WindowSpec

	// Budget is the owning job's resource accounting (may be nil). The
	// runner strips MaxPipeMemory before building it: for streaming
	// jobs that ceiling governs the source buffer with pause semantics,
	// not the first-breach-kills budget.
	Budget *runtime.Budget
	// Traffic receives live data-plane movement (may be nil).
	Traffic *runtime.Traffic
	// Sandbox confines command file access to the plan's directory.
	Sandbox bool

	statsMu sync.Mutex
	hits    int64
	misses  int64
}

// streamStatePath and streamPartialPath name the fold's two operands in
// the in-memory combine filesystem — the stream-time analog of the
// virtual edge names an agg-tree interior node reads.
const (
	streamStatePath   = "/pash/stream/state"
	streamPartialPath = "/pash/stream/partial"
)

// PlanStream parses and classifies src for windowed streaming
// execution. The script must be exactly one foreground pipeline of
// simple stages, with no redirections or assignment prefixes (the
// stream owns stdin and stdout), and must fit one of the streamable
// shapes:
//
//   - every stage stateless             → EmitDelta
//   - stateless* + associative agg tail → EmitCumulative
//   - stateless* + sort | head (top-k)  → EmitCumulative, 2-stage fold
//
// Word expansion (variables, command substitution) happens here, once,
// exactly as it would at the top of a batch run.
func (c *Compiler) PlanStream(src, dir string, vars map[string]string) (*StreamPlan, error) {
	list, err := shell.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(list.Items) != 1 {
		return nil, notStreamable("want exactly one pipeline, got %d statements", len(list.Items))
	}
	if list.Items[0].Background {
		return nil, notStreamable("background jobs cannot stream")
	}
	var simples []*shell.Simple
	switch cmd := list.Items[0].Cmd.(type) {
	case *shell.Simple:
		simples = []*shell.Simple{cmd}
	case *shell.Pipeline:
		if cmd.Negated {
			return nil, notStreamable("negated pipelines cannot stream")
		}
		for _, s := range cmd.Cmds {
			ss, ok := s.(*shell.Simple)
			if !ok {
				return nil, notStreamable("compound pipeline stages cannot stream")
			}
			simples = append(simples, ss)
		}
	default:
		return nil, notStreamable("%T is not a pipeline", cmd)
	}

	// Expand with a throwaway interpreter: same env/expansion semantics
	// as a batch run, paid once at plan time.
	tmp := NewInterp(c, dir, vars, runtime.StdIO{})
	x := tmp.expander()
	stages := make([]Stage, 0, len(simples))
	for _, s := range simples {
		if len(s.Assigns) > 0 {
			return nil, notStreamable("assignment prefixes cannot stream")
		}
		if len(s.Redirs) > 0 {
			return nil, notStreamable("redirections cannot stream (the stream owns stdin/stdout)")
		}
		var argv []string
		for _, w := range s.Args {
			fs, err := x.ExpandWord(w)
			if err != nil {
				return nil, err
			}
			argv = append(argv, fs...)
		}
		if len(argv) == 0 {
			return nil, notStreamable("empty command after expansion")
		}
		switch argv[0] {
		case "cd", "export", "wait", "exec", "set", "umask", "ulimit":
			return nil, notStreamable("builtin %s cannot stream", argv[0])
		}
		stages = append(stages, Stage{Name: argv[0], Args: argv[1:]})
	}

	// Compile once, unoptimized, to reuse the batch classification:
	// CompilePipeline adds one node per stage in order, attaching the
	// (map, aggregate) pair wherever the agg library knows one.
	g, err := c.CompilePipeline(stages, RegionIO{})
	if err != nil {
		return nil, err
	}
	spec, err := classifyStream(g.Nodes)
	if err != nil {
		return nil, err
	}
	// Windowize validates the streaming shape (stdin in, stdout out)
	// against the compiled graph; the spec stays on the plan and is
	// attached to each window's private clone at execution time.
	if err := dfg.Windowize(g, spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotStreamable, err)
	}

	return &StreamPlan{
		c:      c,
		stages: stages,
		rkey:   regionKey(stages),
		dir:    dir,
		env:    tmp.envSnapshot(),
		window: *spec,
	}, nil
}

// classifyStream derives the window operator's emit/composition
// contract from a compiled (unoptimized) pipeline — one node per stage.
func classifyStream(nodes []*dfg.Node) (*dfg.WindowSpec, error) {
	statelessThrough := func(k int) bool {
		for i := 0; i < k; i++ {
			if nodes[i].Class != annot.Stateless {
				return false
			}
		}
		return true
	}
	n := len(nodes)
	last := nodes[n-1]
	switch {
	case last.Class == annot.Stateless && statelessThrough(n-1):
		// Stateless end to end: window outputs concatenate.
		return &dfg.WindowSpec{Emit: dfg.EmitDelta}, nil
	case last.Agg != nil && last.Agg.Associative && statelessThrough(n-1):
		// Terminal associative aggregator (wc, sum/grep -c, uniq -c,
		// sort): the window partial folds into carried state with the
		// same aggregate command the agg tree uses.
		return &dfg.WindowSpec{
			Emit:    dfg.EmitCumulative,
			Combine: []dfg.CombineStage{{Name: last.Agg.AggName, Args: last.Agg.AggArgs}},
		}, nil
	case n >= 2 && last.Agg != nil && last.Agg.Associative && last.Agg.StopsEarly &&
		nodes[n-2].Name == "sort" && nodes[n-2].Agg != nil && statelessThrough(n-2):
		// sort | head -n K (top-k): fold = merge the sorted top-k runs,
		// then re-take the top k. Sound because the global top-k is
		// contained in the union of per-part top-ks.
		return &dfg.WindowSpec{
			Emit: dfg.EmitCumulative,
			Combine: []dfg.CombineStage{
				{Name: nodes[n-2].Agg.AggName, Args: nodes[n-2].Agg.AggArgs},
				{Name: last.Agg.AggName, Args: last.Agg.AggArgs},
			},
		}, nil
	}
	return nil, notStreamable("stage %q has no windowed form (want stateless stages with an associative aggregation tail)", last.Name)
}

// Window exposes the plan's window operator spec; the runner fills the
// trigger policy (interval, max bytes) before the first window.
func (p *StreamPlan) Window() *dfg.WindowSpec { return &p.window }

// Stages reports the expanded pipeline (for metrics and tests).
func (p *StreamPlan) Stages() []Stage { return p.stages }

// PlanHits reports plan-cache verdicts across the windows run so far.
func (p *StreamPlan) PlanHits() (hits, misses int64) {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.hits, p.misses
}

// RunWindow executes one window of the stream as a normal batch region
// at the given effective width: the plan cache serves the template
// (each distinct width compiles once, every later window pays one
// clone), and the graph runs through the full runtime — fusion, rr
// split, agg trees, and the distributed worker plane when the compiler
// has one. win is the window's line-aligned payload; out receives the
// window's raw result (the caller composes it per the emit mode).
func (p *StreamPlan) RunWindow(ctx context.Context, win io.Reader, out, errw io.Writer, eff int) (int, error) {
	if eff < 1 {
		eff = 1
	}
	g, hit, err := p.c.planRegion(p.stages, p.rkey, eff)
	if err != nil {
		return 1, err
	}
	g.Window = &p.window
	p.statsMu.Lock()
	if hit {
		p.hits++
	} else {
		p.misses++
	}
	p.statsMu.Unlock()

	rcfg := runtime.Config{
		BlockingEager:   p.c.Opts.BlockingEagerBytes,
		InputAwareSplit: p.c.Opts.InputAwareSplit,
		Dir:             p.dir,
		Env:             p.env,
		Budget:          p.Budget,
		Sandbox:         p.Sandbox,
		Traffic:         p.Traffic,
	}
	if p.c.Workers != nil {
		rcfg.Remote = p.c.Workers
	}
	if p.c.Opts.SplitMode == dfg.SplitGeneral {
		rcfg.Split = runtime.SplitGeneral
	}
	res, err := runtime.Execute(ctx, g, p.c.Cmds, runtime.StdIO{Stdin: win, Stdout: out, Stderr: errw}, rcfg)
	if err != nil {
		return 1, err
	}
	return res.ExitCode, nil
}

// Combine folds a new window partial into the carried state using the
// plan's combine pipeline, returning the next state (which is also the
// cumulative emission). The first stage reads the two parts as
// operands through an in-memory filesystem — the same convention an
// agg-tree interior node uses to read its children — and later stages
// read the previous stage's stdout. A nil state means the first
// window: the partial is the state.
func (p *StreamPlan) Combine(state, partial []byte) ([]byte, error) {
	if len(p.window.Combine) == 0 || state == nil {
		return partial, nil
	}
	cur := state
	var in io.Reader
	for i, cs := range p.window.Combine {
		args := cs.Args
		var fs commands.FS = memFS{}
		if i == 0 {
			args = append(append([]string(nil), cs.Args...), streamStatePath, streamPartialPath)
			fs = memFS{streamStatePath: cur, streamPartialPath: partial}
			in = bytes.NewReader(nil)
		}
		var outBuf bytes.Buffer
		cctx := &commands.Context{
			Name:   cs.Name,
			Args:   args,
			Stdin:  in,
			Stdout: &outBuf,
			Stderr: io.Discard,
			FS:     fs,
			Env:    p.env,
		}
		if err := p.c.Cmds.Run(cs.Name, cctx); err != nil {
			var ee *commands.ExitError
			if !errors.As(err, &ee) {
				return nil, fmt.Errorf("core: stream combine %s: %w", cs.Name, err)
			}
		}
		cur = append([]byte(nil), outBuf.Bytes()...)
		in = bytes.NewReader(cur)
	}
	return cur, nil
}

// memFS maps the fold's operand names to in-memory payloads. Everything
// else is invisible: combine stages run hermetically.
type memFS map[string][]byte

func (m memFS) Open(path string) (io.ReadCloser, error) {
	b, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("core: unknown combine operand %s", path)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

func (m memFS) Create(path string) (io.WriteCloser, error) {
	return nil, fmt.Errorf("core: combine stages cannot create %s", path)
}

func (m memFS) Append(path string) (io.WriteCloser, error) {
	return nil, fmt.Errorf("core: combine stages cannot append to %s", path)
}
