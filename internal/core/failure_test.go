package core

import (
	"strings"
	"testing"
)

// Failure-injection tests: the compiler and runtime must fail loudly and
// cleanly (no hangs, no partial silence) on bad inputs.

func TestMissingInputFileFails(t *testing.T) {
	_, _, err := runScriptCode(t, DefaultOptions(4), "cat does-not-exist.txt | sort", "", t.TempDir(), nil)
	if err == nil {
		t.Fatal("missing input file must error")
	}
	if !strings.Contains(err.Error(), "does-not-exist") {
		t.Errorf("error does not name the file: %v", err)
	}
}

func TestMissingInputFileParallelFails(t *testing.T) {
	// Same failure with the transformed graph (split over a missing
	// file must not hang).
	opts := DefaultOptions(8)
	opts.InputAwareSplit = true
	_, _, err := runScriptCode(t, opts, "grep x < nope.txt | tr a-z A-Z", "", t.TempDir(), nil)
	if err == nil {
		t.Fatal("missing redirect input must error")
	}
}

func TestBadFlagFails(t *testing.T) {
	_, _, err := runScriptCode(t, Options{Width: 1}, "sort --nonsense", "a\n", "", nil)
	if err == nil {
		t.Fatal("unknown flag must error")
	}
}

func TestBadRegexFails(t *testing.T) {
	_, _, err := runScriptCode(t, Options{Width: 1}, "grep '(['", "a\n", "", nil)
	if err == nil {
		t.Fatal("invalid regex must error")
	}
}

func TestSedUnsupportedFails(t *testing.T) {
	_, _, err := runScriptCode(t, Options{Width: 1}, "sed -i 's/a/b/' f.txt", "", "", nil)
	if err == nil {
		t.Fatal("sed -i must be rejected")
	}
}

func TestSyntaxErrorSurfaces(t *testing.T) {
	_, code, err := runScriptCode(t, Options{Width: 1}, "cat |", "", "", nil)
	if err == nil {
		t.Fatal("syntax error must surface")
	}
	if code != 127 {
		t.Errorf("syntax error exit code = %d, want 127", code)
	}
}

func TestErrorInOneParallelBranchPropagates(t *testing.T) {
	// comm against a missing dictionary: the error must propagate out
	// of the parallel region, not deadlock the other branches.
	src := "tr A-Z a-z | sort -u | comm -23 - missing-dict.txt"
	_, _, err := runScriptCode(t, DefaultOptions(4), src, "a\nb\n", t.TempDir(), nil)
	if err == nil {
		t.Fatal("missing config file must error")
	}
}

func TestEmptyInputEverywhere(t *testing.T) {
	// Zero-byte input must produce zero/degenerate output without
	// errors across configurations.
	for _, src := range []string{
		"grep x | sort | uniq -c",
		"tr a-z A-Z | head -n 5",
		"sort | tac",
		"wc -l",
	} {
		want := runScript(t, Options{Width: 1}, src, "", "", nil)
		got := runScript(t, DefaultOptions(4), src, "", "", nil)
		if got != want {
			t.Errorf("%s on empty input: %q vs %q", src, got, want)
		}
	}
}

func TestSingleLineInput(t *testing.T) {
	// Width far larger than the data: most replicas see empty chunks.
	for _, src := range []string{
		"grep a | tr a-z A-Z",
		"sort -rn",
		"uniq -c",
		"bigrams-aux",
	} {
		want := runScript(t, Options{Width: 1}, src, "a 1\n", "", nil)
		got := runScript(t, DefaultOptions(16), src, "a 1\n", "", nil)
		if got != want {
			t.Errorf("%s on single line: %q vs %q", src, got, want)
		}
	}
}
