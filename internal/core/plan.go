package core

import (
	"container/list"
	"strconv"
	"sync"
	"time"

	"repro/internal/dfg"
)

// The plan cache splits region compilation into a pure *planning* step —
// expand-independent: classify, lift to a DFG, optimize — and a cheap
// *instantiation* step that clones the planned template and binds
// per-run IO. Loops like
//
//	for f in *; do cut -f1 "$f" | grep x | wc -l; done
//
// hit the same plan every iteration: the expanded argv differs only in
// the operand, so each distinct argv shape compiles once and every
// later iteration pays one graph clone instead of the full
// compile+optimize pass (Tab. 2's compilation cost, amortized away).
//
// Cache key. A plan is keyed by the canonical fingerprint of the
// *expanded* region — per stage: command name, argv, and resolved
// redirections, all length-prefixed — concatenated with the planning
// options that shape the optimized graph (effective width, split flags
// and mode, eagerness, fusion, aggregation fan-in). Keying on expanded
// argv makes env-dependent regions miss exactly when their argv
// changes: `grep "$PAT" f` re-plans when PAT changes and hits when it
// does not. Per-run state that planning never reads — the variable
// environment snapshot, the working directory, the stdio bindings — is
// deliberately outside the key; it binds at instantiation/execution.

// regionKey canonically fingerprints an expanded region. Every element
// is length-prefixed so no argv or path can collide across boundaries.
// This runs on every region execution (hit or miss), so it avoids fmt.
func regionKey(stages []Stage) string {
	var b []byte
	for _, st := range stages {
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(st.Name)), 10)
		b = append(b, ':')
		b = append(b, st.Name...)
		for _, a := range st.Args {
			b = append(b, 'a')
			b = strconv.AppendInt(b, int64(len(a)), 10)
			b = append(b, ':')
			b = append(b, a...)
		}
		for _, r := range st.Redirs {
			b = append(b, 'r')
			b = strconv.AppendInt(b, int64(r.N), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(r.Op), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(len(r.Target)), 10)
			b = append(b, ':')
			b = append(b, r.Target...)
			if r.Body != "" {
				b = append(b, 'h')
				b = strconv.AppendInt(b, int64(len(r.Body)), 10)
				b = append(b, ':')
				b = append(b, r.Body...)
			}
		}
	}
	return string(b)
}

// planKey extends a region fingerprint with the options that planning
// consults, at the given effective width, plus the annotation and
// command registry generations. The generations make re-registration
// bust the cache by construction: registering a command, kernel,
// aggregator, or annotation bumps the registry's globally unique
// generation, so a cached plan built against the old registries can
// never be served for the new ones — even when a cache outlives a
// registration or is shared across compiler snapshots.
func (c *Compiler) planKey(region string, width int) string {
	o := c.Opts
	b := make([]byte, 0, len(region)+72)
	b = append(b, 'g')
	b = strconv.AppendUint(b, c.Annot.Generation(), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, c.Cmds.Generation(), 10)
	b = append(b, 'w')
	b = strconv.AppendInt(b, int64(width), 10)
	b = appendBool(b, o.Split)
	b = appendBool(b, o.InputAwareSplit)
	b = strconv.AppendInt(b, int64(o.SplitMode), 10)
	b = strconv.AppendInt(b, int64(o.Eager), 10)
	b = strconv.AppendInt(b, int64(o.BlockingEagerBytes), 10)
	b = appendBool(b, o.DisableFusion)
	b = strconv.AppendInt(b, int64(o.AggFanIn), 10)
	if c.Workers != nil {
		// Distributed plans embed worker assignments; key them to the
		// membership epoch so a pool change re-plans instead of
		// dispatching to a vanished worker.
		b = append(b, 'W')
		b = append(b, c.Workers.Fingerprint()...)
	}
	b = append(b, '|')
	b = append(b, region...)
	return string(b)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '|', '1')
	}
	return append(b, '|', '0')
}

// jitSequentialWall is the measured region wall time below which the
// width hint degrades a region to sequential execution: regions this
// short are dominated by parallelization overhead (split/merge/agg
// processes), so the measured-profile loop plans them at width 1.
const jitSequentialWall = 300 * time.Microsecond

// planEntry is one cached template plus the region's measured history.
type planEntry struct {
	key   string
	tmpl  *dfg.Graph
	width int
}

// regionStats accumulates a region's measured executions (the JIT loop:
// RegionProfiles were collected so planning could consult them).
type regionStats struct {
	runs int64
	// ewmaWall is an exponentially-weighted moving average of region
	// wall time (alpha 1/4).
	ewmaWall time.Duration
}

// PlanCacheStats is a point-in-time cache snapshot.
type PlanCacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	// SeqHints counts instantiations where measured history degraded
	// the region to sequential width.
	SeqHints int64 `json:"seq_hints"`
}

// PlanCache is an LRU of planned+optimized region templates plus
// per-region measured stats. All methods are safe for concurrent use;
// templates are immutable once inserted (lookups clone).
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	byKey   map[string]*list.Element // planKey -> *planEntry element
	lru     list.List
	stats   map[string]*regionStats // regionKey -> history
	hits    int64
	misses  int64
	seqHint int64
}

// maxTrackedRegions bounds the measured-history map independently of
// the plan LRU (histories are tiny; plans hold whole graphs).
const maxTrackedRegions = 4096

// NewPlanCache builds a cache holding at most capacity templates;
// capacity <= 0 selects the default (256).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &PlanCache{
		cap:   capacity,
		byKey: map[string]*list.Element{},
		stats: map[string]*regionStats{},
	}
}

// lookup returns the immutable template for key, if cached.
func (pc *PlanCache) lookup(key string) (*dfg.Graph, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	pc.lru.MoveToFront(el)
	return el.Value.(*planEntry).tmpl, true
}

// insert stores a template, evicting the least-recently-used entry
// beyond capacity. The caller must not mutate tmpl after insertion.
func (pc *PlanCache) insert(key string, tmpl *dfg.Graph, width int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		pc.lru.MoveToFront(el)
		el.Value.(*planEntry).tmpl = tmpl
		return
	}
	el := pc.lru.PushFront(&planEntry{key: key, tmpl: tmpl, width: width})
	pc.byKey[key] = el
	for pc.lru.Len() > pc.cap {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.byKey, back.Value.(*planEntry).key)
	}
}

// noteRun records a measured region execution for future width hints.
func (pc *PlanCache) noteRun(region string, wall time.Duration) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	st, ok := pc.stats[region]
	if !ok {
		if len(pc.stats) >= maxTrackedRegions {
			return
		}
		st = &regionStats{}
		pc.stats[region] = st
	}
	st.runs++
	if st.runs == 1 {
		st.ewmaWall = wall
	} else {
		st.ewmaWall = (3*st.ewmaWall + wall) / 4
	}
}

// widthHint picks the effective width for a region given its measured
// history: regions whose smoothed wall time sits under
// jitSequentialWall run sequentially (parallelization overhead
// dominates); everything else keeps the requested width.
func (pc *PlanCache) widthHint(region string, want int) int {
	if want <= 1 {
		return want
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	st, ok := pc.stats[region]
	if !ok || st.runs == 0 {
		return want
	}
	if st.ewmaWall < jitSequentialWall {
		pc.seqHint++
		return 1
	}
	return want
}

// Stats snapshots the cache counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:     pc.hits,
		Misses:   pc.misses,
		Entries:  pc.lru.Len(),
		SeqHints: pc.seqHint,
	}
}

// optimizeAt runs the parallelization transformations at an explicit
// width (the per-run effective width the scheduler granted), leaving
// the compiler's configured width untouched.
func (c *Compiler) optimizeAt(g *dfg.Graph, width int) {
	opts := c.dfgOptions()
	opts.Width = width
	dfg.Apply(g, opts)
}

// PlanRegion is the public planning entry point: resolve a region of
// pre-expanded stages to an executable graph at the given width,
// through the plan cache when one is configured. The boolean reports a
// cache hit.
func (c *Compiler) PlanRegion(stages []Stage, width int) (*dfg.Graph, bool, error) {
	return c.planRegion(stages, regionKey(stages), width)
}

// planRegion resolves one region to an executable graph at the given
// effective width: a clone of the cached template on a hit, or a fresh
// compile+optimize (cached for next time) on a miss. The returned graph
// is private to the caller.
func (c *Compiler) planRegion(stages []Stage, region string, width int) (g *dfg.Graph, hit bool, err error) {
	if c.Plans == nil {
		g, err = c.CompilePipeline(stages, RegionIO{})
		if err != nil {
			return nil, false, err
		}
		c.optimizeAt(g, width)
		c.distribute(g, width)
		return g, false, nil
	}
	key := c.planKey(region, width)
	if tmpl, ok := c.Plans.lookup(key); ok {
		return tmpl.Clone(), true, nil
	}
	g, err = c.CompilePipeline(stages, RegionIO{})
	if err != nil {
		return nil, false, err
	}
	c.optimizeAt(g, width)
	c.distribute(g, width)
	c.Plans.insert(key, g.Clone(), width)
	return g, false, nil
}

// distribute partitions a freshly planned region across the attached
// worker pool (no-op without one). Custom user commands never ship:
// they exist only in the coordinator's registry.
func (c *Compiler) distribute(g *dfg.Graph, width int) {
	if c.Workers == nil || width < 2 {
		return
	}
	names := c.Workers.WorkerNames()
	if len(names) == 0 {
		return
	}
	dfg.Distribute(g, dfg.DistOptions{
		Workers:    names,
		FileRanges: c.Workers.SharedFS(),
		Shippable:  func(name string) bool { return !c.Cmds.IsCustom(name) },
		// Salt plan-cache keys with the coordinator's registry
		// generation: re-registering a command produces fresh keys, so
		// workers can never serve a plan cached under old semantics.
		KeySalt: "reg" + strconv.FormatUint(c.Cmds.Generation(), 10),
	})
}
