package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/runtime"
)

// runScript executes src with the given options, returning stdout.
func runScript(t *testing.T, opts Options, src, stdin, dir string, vars map[string]string) string {
	t.Helper()
	out, code, err := runScriptCode(t, opts, src, stdin, dir, vars)
	if err != nil {
		t.Fatalf("script failed (code %d): %v\nscript: %s", code, err, src)
	}
	return out
}

func runScriptCode(t *testing.T, opts Options, src, stdin, dir string, vars map[string]string) (string, int, error) {
	t.Helper()
	var out bytes.Buffer
	c := NewCompiler(opts)
	code, err := Run(context.Background(), c, src, dir,
		vars, runtime.StdIO{Stdin: strings.NewReader(stdin), Stdout: &out, Stderr: os.Stderr})
	return out.String(), code, err
}

// seqVsPar asserts the core correctness invariant: the parallel output
// equals the sequential output, for every width and configuration.
func seqVsPar(t *testing.T, src, stdin, dir string, vars map[string]string) {
	t.Helper()
	want := runScript(t, Options{Width: 1}, src, stdin, dir, vars)
	for _, cfg := range []Options{
		{Width: 2, Split: false, Eager: dfg.EagerFull},
		{Width: 4, Split: true, Eager: dfg.EagerFull},
		{Width: 4, Split: true, Eager: dfg.EagerNone},
		{Width: 4, Split: true, Eager: dfg.EagerBlocking, BlockingEagerBytes: 1 << 18},
		{Width: 8, Split: true, Eager: dfg.EagerFull, InputAwareSplit: true},
	} {
		got := runScript(t, cfg, src, stdin, dir, vars)
		if got != want {
			t.Errorf("config %+v diverged:\n--- sequential:\n%s--- parallel:\n%s", cfg, clip(want), clip(got))
		}
	}
}

func clip(s string) string {
	if len(s) > 600 {
		return s[:600] + "...(clipped)"
	}
	return s
}

// corpus generates a deterministic multi-line text input.
func corpus(lines int) string {
	words := []string{"the", "quick", "brown", "fox", "jumps", "over",
		"lazy", "dog", "pack", "my", "box", "with", "five", "dozen",
		"liquor", "jugs", "999", "0042", "gz", "data"}
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		sb.WriteString(words[i%len(words)])
		sb.WriteByte(' ')
		sb.WriteString(words[(i*7+3)%len(words)])
		sb.WriteByte(' ')
		sb.WriteString(fmt.Sprintf("%d", i*37%1000))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestSimplePipelines(t *testing.T) {
	in := corpus(500)
	for _, src := range []string{
		"grep quick | tr a-z A-Z",
		"grep -v 999 | sort | uniq -c | sort -rn | head -n 5",
		"tr ' ' '\\n' | sort | uniq | wc -l",
		"cut -d ' ' -f2 | sort -u",
		"sed 's/the/THE/g' | grep THE | wc -l",
		"sort -rn",
		"tac | head -n 7",
		"wc",
		"awk '{print $2}' | sort | uniq -c",
	} {
		t.Run(src, func(t *testing.T) {
			seqVsPar(t, src, in, "", nil)
		})
	}
}

func TestFileInputs(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte(corpus(300)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.txt"), []byte(corpus(200)), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"cat a.txt b.txt | grep fox | wc -l",
		"grep quick a.txt b.txt | sort",
		"sort a.txt > sorted.txt",
		"cat <a.txt | tr a-z A-Z | head -n 3",
	} {
		t.Run(src, func(t *testing.T) {
			seqVsPar(t, src, "", dir, nil)
		})
	}
	// Output file written by redirection.
	runScript(t, DefaultOptions(4), "sort a.txt > out.txt", "", dir, nil)
	data, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil || len(data) == 0 {
		t.Fatalf("redirected output missing: %v", err)
	}
}

func TestControlFlow(t *testing.T) {
	got := runScript(t, Options{Width: 1}, "for i in 1 2 3; do echo item $i; done", "", "", nil)
	if got != "item 1\nitem 2\nitem 3\n" {
		t.Errorf("for = %q", got)
	}
	got = runScript(t, Options{Width: 1}, "if true; then echo yes; else echo no; fi", "", "", nil)
	if got != "yes\n" {
		t.Errorf("if = %q", got)
	}
	got = runScript(t, Options{Width: 1}, "if false; then echo yes; else echo no; fi", "", "", nil)
	if got != "no\n" {
		t.Errorf("if-else = %q", got)
	}
	got = runScript(t, Options{Width: 1}, "x=0; while test $x != 3; do echo $x; x=$(echo ${x}1 | wc -c | tr -d ' '); done", "", "", nil)
	_ = got // loop semantics smoke-tested; exact output below
	got = runScript(t, Options{Width: 1}, "true && echo a || echo b; false && echo c || echo d", "", "", nil)
	if got != "a\nd\n" {
		t.Errorf("and-or = %q", got)
	}
	got = runScript(t, Options{Width: 1}, "echo bg & wait; echo done", "", "", nil)
	if !strings.Contains(got, "bg") || !strings.Contains(got, "done") {
		t.Errorf("background = %q", got)
	}
}

func TestVariablesAndExpansion(t *testing.T) {
	got := runScript(t, Options{Width: 1}, `x=hello; echo $x world "$x!"`, "", "", nil)
	if got != "hello world hello!\n" {
		t.Errorf("vars = %q", got)
	}
	got = runScript(t, Options{Width: 1}, "for y in {5..7}; do echo year $y; done", "", "", nil)
	if got != "year 5\nyear 6\nyear 7\n" {
		t.Errorf("brace range = %q", got)
	}
	got = runScript(t, Options{Width: 1}, `n=$(echo one two | wc -w); echo count=$n`, "", "", nil)
	if strings.TrimSpace(got) != "count=2" {
		t.Errorf("cmdsub = %q", got)
	}
}

func TestSubshellScoping(t *testing.T) {
	got := runScript(t, Options{Width: 1}, `x=1; ( x=2; echo inner $x ); echo outer $x`, "", "", nil)
	if got != "inner 2\nouter 1\n" {
		t.Errorf("subshell scoping = %q", got)
	}
	got = runScript(t, Options{Width: 1}, `x=1; { x=2; echo inner $x; }; echo outer $x`, "", "", nil)
	if got != "inner 2\nouter 2\n" {
		t.Errorf("brace scoping = %q", got)
	}
}

func TestExitCodes(t *testing.T) {
	_, code, err := runScriptCode(t, Options{Width: 1}, "grep nomatch", "abc\n", "", nil)
	if err != nil || code != 1 {
		t.Errorf("grep nomatch: code=%d err=%v", code, err)
	}
	_, code, err = runScriptCode(t, Options{Width: 1}, "! grep nomatch", "abc\n", "", nil)
	if err != nil || code != 0 {
		t.Errorf("! grep nomatch: code=%d err=%v", code, err)
	}
	// Pipeline status is the last stage's.
	_, code, err = runScriptCode(t, Options{Width: 1}, "grep nomatch | cat", "abc\n", "", nil)
	if err != nil || code != 0 {
		t.Errorf("pipeline status: code=%d err=%v", code, err)
	}
}

func TestSpellPipeline(t *testing.T) {
	// Johnson's spell (§6.1): preprocess, sort -u, comm against a
	// dictionary.
	dir := t.TempDir()
	dict := "brown\ndog\nfox\njumps\nlazy\nover\nquick\nthe\n"
	if err := os.WriteFile(filepath.Join(dir, "dict.txt"), []byte(dict), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `tr -cs A-Za-z '\n' | tr A-Z a-z | sort -u | comm -23 - dict.txt`
	in := "The quick brown fox jumps over the lazy dog\nzyzzyva qwertyish dog\n"
	want := runScript(t, Options{Width: 1}, src, in, dir, nil)
	if !strings.Contains(want, "zyzzyva") || strings.Contains(want, "dog") {
		t.Fatalf("spell sequential output wrong: %q", want)
	}
	seqVsPar(t, src, in, dir, nil)
}

func TestWeatherScript(t *testing.T) {
	// Fig. 1, against the offline curl simulation: per-year directory
	// listings plus gzipped fixed-width records (temperature at columns
	// 89-92).
	root := t.TempDir()
	for year := 2015; year <= 2017; year++ {
		ydir := filepath.Join(root, "noaa", fmt.Sprintf("%d", year))
		if err := os.MkdirAll(ydir, 0o755); err != nil {
			t.Fatal(err)
		}
		var index strings.Builder
		for st := 0; st < 3; st++ {
			name := fmt.Sprintf("station%d.gz", st)
			var raw strings.Builder
			for d := 0; d < 20; d++ {
				temp := (year-2015)*100 + st*10 + d
				line := strings.Repeat("x", 88) + fmt.Sprintf("%04d", temp) + "rest"
				raw.WriteString(line + "\n")
			}
			var gz bytes.Buffer
			zw := gzip.NewWriter(&gz)
			if _, err := zw.Write([]byte(raw.String())); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(ydir, name), gz.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			index.WriteString(fmt.Sprintf("-rw-r--r-- 1 ftp ftp 4242 Jan  1 00:00 %s\n", name))
		}
		if err := os.WriteFile(filepath.Join(root, "noaa", fmt.Sprintf("%d.index", year)), []byte(index.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		// curl of the directory itself resolves to the index file: store
		// it under the bare year path too.
		if err := os.WriteFile(filepath.Join(root, "noaa", fmt.Sprintf("%d", year)+".listing"), []byte(index.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The script: like Fig. 1 but fetching the listing file explicitly
	// (our curl maps URLs to files, not directories).
	src := `base="ftp://host/noaa";
for y in {2015..2017}; do
 curl -s $base/$y.index | grep gz | tr -s ' ' | cut -d ' ' -f9 |
 sed "s;^;$base/$y/;" | xargs -n 1 curl -s | gunzip |
 cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 |
 sed "s/^/Maximum temperature for $y is: /"
done`
	vars := map[string]string{"PASH_CURL_ROOT": filepath.Join(root)}
	// URLs like ftp://host/noaa/2015.index -> root/host/noaa/2015.index.
	// Re-root the data accordingly.
	hostRoot := filepath.Join(root, "host")
	if err := os.MkdirAll(hostRoot, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(root, "noaa"), filepath.Join(hostRoot, "noaa")); err != nil {
		t.Fatal(err)
	}
	want := runScript(t, Options{Width: 1}, src, "", root, vars)
	for _, frag := range []string{
		"Maximum temperature for 2015 is: 0039",
		"Maximum temperature for 2016 is: 0139",
		"Maximum temperature for 2017 is: 0239",
	} {
		if !strings.Contains(want, frag) {
			t.Fatalf("weather output missing %q:\n%s", frag, want)
		}
	}
	for _, w := range []int{2, 4} {
		got := runScript(t, DefaultOptions(w), src, "", root, vars)
		if got != want {
			t.Errorf("width %d diverged:\n%s\nvs\n%s", w, got, want)
		}
	}
}

func TestRegionStats(t *testing.T) {
	var out bytes.Buffer
	c := NewCompiler(DefaultOptions(4))
	in := NewInterp(c, "", nil, runtime.StdIO{Stdin: strings.NewReader(corpus(50)), Stdout: &out})
	if _, err := in.RunScript(context.Background(), "grep the | sort | head -n 2"); err != nil {
		t.Fatal(err)
	}
	if in.Stats.Regions != 1 || in.Stats.MaxNodes < 8 {
		t.Errorf("stats = %+v", in.Stats)
	}
}

func TestUnknownCommandConservative(t *testing.T) {
	// Unknown commands abort that region with a useful error.
	_, _, err := runScriptCode(t, DefaultOptions(4), "definitely-not-a-command", "", "", nil)
	if err == nil {
		t.Error("expected error for unknown command")
	}
}
