package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/dfg"
	"repro/internal/runtime"
	"repro/internal/shell"
)

// Interp walks a shell AST, executing barriers sequentially and handing
// each parallelizable region (pipeline) to the compiler + runtime. It is
// the in-process analog of PaSh handing the transformed script to the
// user's shell (§2.3).
type Interp struct {
	c     *Compiler
	env   *shell.Env
	dir   string
	stdio runtime.StdIO

	jobMu sync.Mutex
	jobs  []chan int

	// Stats accumulates per-region compilation metrics for Tab. 2.
	Stats InterpStats

	profMu sync.Mutex
	// Profiles records each executed region's graph and measured node
	// times, feeding the multicore scheduling simulator.
	Profiles []RegionProfile
}

// InterpStats aggregates region-level metrics.
type InterpStats struct {
	Regions    int
	TotalNodes int
	MaxNodes   int
}

// RegionProfile is one executed region's graph plus measured node times.
type RegionProfile struct {
	Graph *dfg.Graph
	Times []runtime.NodeTime
	Wall  time.Duration
}

// NewInterp builds an interpreter. vars seeds the variable environment
// (e.g. PASH_CURL_ROOT); dir is the working directory for file access.
func NewInterp(c *Compiler, dir string, vars map[string]string, stdio runtime.StdIO) *Interp {
	env := shell.NewEnv()
	for k, v := range vars {
		env.Set(k, v)
	}
	if stdio.Stdout == nil {
		stdio.Stdout = io.Discard
	}
	if stdio.Stderr == nil {
		stdio.Stderr = io.Discard
	}
	return &Interp{c: c, env: env, dir: dir, stdio: stdio}
}

// RunScript parses and executes src, returning the final exit status.
func (in *Interp) RunScript(ctx context.Context, src string) (int, error) {
	list, err := shell.Parse(src)
	if err != nil {
		return 127, err
	}
	code, err := in.runList(ctx, list)
	werr := in.waitJobs()
	if err == nil {
		err = werr
	}
	return code, err
}

func (in *Interp) waitJobs() error {
	in.jobMu.Lock()
	jobs := in.jobs
	in.jobs = nil
	in.jobMu.Unlock()
	for _, j := range jobs {
		<-j
	}
	return nil
}

func (in *Interp) runList(ctx context.Context, list *shell.List) (int, error) {
	code := 0
	for _, item := range list.Items {
		if item.Background {
			ch := make(chan int, 1)
			in.jobMu.Lock()
			in.jobs = append(in.jobs, ch)
			in.jobMu.Unlock()
			cmd := item.Cmd
			go func() {
				c, _ := in.runCommand(ctx, cmd)
				ch <- c
			}()
			code = 0
			continue
		}
		var err error
		code, err = in.runCommand(ctx, item.Cmd)
		if err != nil {
			return code, err
		}
	}
	return code, nil
}

func (in *Interp) runCommand(ctx context.Context, cmd shell.Command) (int, error) {
	switch cmd := cmd.(type) {
	case *shell.Simple:
		return in.runPipeline(ctx, []*shell.Simple{cmd})
	case *shell.Pipeline:
		stages := make([]*shell.Simple, 0, len(cmd.Cmds))
		for _, c := range cmd.Cmds {
			s, ok := c.(*shell.Simple)
			if !ok {
				// Compound stages run sequentially through a buffer.
				return in.runCompoundPipeline(ctx, cmd)
			}
			stages = append(stages, s)
		}
		code, err := in.runPipeline(ctx, stages)
		if cmd.Negated {
			code = negate(code)
		}
		return code, err
	case *shell.AndOr:
		code, err := in.runCommand(ctx, cmd.First)
		if err != nil {
			return code, err
		}
		for _, part := range cmd.Rest {
			if part.Op == shell.AndOp && code != 0 {
				continue
			}
			if part.Op == shell.OrOp && code == 0 {
				continue
			}
			code, err = in.runCommand(ctx, part.Cmd)
			if err != nil {
				return code, err
			}
		}
		return code, nil
	case *shell.List:
		return in.runList(ctx, cmd)
	case *shell.For:
		x := in.expander()
		var items []string
		for _, w := range cmd.Items {
			fs, err := x.ExpandWord(w)
			if err != nil {
				return 1, err
			}
			items = append(items, fs...)
		}
		code := 0
		for _, it := range items {
			in.env.Set(cmd.Var, it)
			var err error
			code, err = in.runList(ctx, cmd.Body)
			if err != nil {
				return code, err
			}
		}
		return code, nil
	case *shell.If:
		condCode, err := in.runList(ctx, cmd.Cond)
		if err != nil {
			return condCode, err
		}
		if condCode == 0 {
			return in.runList(ctx, cmd.Then)
		}
		if cmd.Else != nil {
			return in.runList(ctx, cmd.Else)
		}
		return 0, nil
	case *shell.While:
		code := 0
		for iter := 0; ; iter++ {
			if iter > 1_000_000 {
				return 1, fmt.Errorf("core: while loop exceeded iteration limit")
			}
			condCode, err := in.runList(ctx, cmd.Cond)
			if err != nil {
				return condCode, err
			}
			stop := condCode != 0
			if cmd.Until {
				stop = condCode == 0
			}
			if stop {
				return code, nil
			}
			code, err = in.runList(ctx, cmd.Body)
			if err != nil {
				return code, err
			}
		}
	case *shell.Subshell:
		sub := &Interp{c: in.c, env: in.env.Child(), dir: in.dir, stdio: in.stdio}
		code, err := sub.runList(ctx, cmd.Body)
		if werr := sub.waitJobs(); err == nil {
			err = werr
		}
		return code, err
	case *shell.Brace:
		return in.runList(ctx, cmd.Body)
	}
	return 1, fmt.Errorf("core: unsupported command node %T", cmd)
}

func negate(code int) int {
	if code == 0 {
		return 1
	}
	return 0
}

// runCompoundPipeline executes a pipeline containing compound stages by
// buffering between stages (sequential semantics, never parallelized).
func (in *Interp) runCompoundPipeline(ctx context.Context, p *shell.Pipeline) (int, error) {
	var input io.Reader = in.stdio.Stdin
	code := 0
	for i, c := range p.Cmds {
		var out bytes.Buffer
		stdio := runtime.StdIO{Stdin: input, Stdout: &out, Stderr: in.stdio.Stderr}
		if i == len(p.Cmds)-1 {
			stdio.Stdout = in.stdio.Stdout
		}
		sub := &Interp{c: in.c, env: in.env, dir: in.dir, stdio: stdio}
		var err error
		code, err = sub.runCommand(ctx, c)
		if err != nil {
			return code, err
		}
		input = &out
	}
	if p.Negated {
		code = negate(code)
	}
	return code, nil
}

// expander builds the word expander with command substitution wired to a
// nested sequential interpreter.
func (in *Interp) expander() *shell.Expander {
	return &shell.Expander{
		Env:  in.env,
		Glob: true,
		Dir:  in.dir,
		CmdSub: func(src string) (string, error) {
			var out bytes.Buffer
			sub := &Interp{
				c:     in.c,
				env:   in.env,
				dir:   in.dir,
				stdio: runtime.StdIO{Stdin: strings.NewReader(""), Stdout: &out, Stderr: in.stdio.Stderr},
			}
			list, err := shell.Parse(src)
			if err != nil {
				return "", err
			}
			if _, err := sub.runList(context.Background(), list); err != nil {
				return "", err
			}
			if werr := sub.waitJobs(); werr != nil {
				return "", werr
			}
			return out.String(), nil
		},
	}
}

// runPipeline expands the stages, compiles the region to a DFG, applies
// the transformations, and executes it.
func (in *Interp) runPipeline(ctx context.Context, simples []*shell.Simple) (int, error) {
	x := in.expander()

	// A lone assignment command mutates the environment.
	if len(simples) == 1 && len(simples[0].Args) == 0 {
		s := simples[0]
		if len(s.Assigns) == 0 && len(s.Redirs) > 0 {
			return 0, nil // bare redirection: creates/truncates files; skip
		}
		for _, a := range s.Assigns {
			v, err := x.ExpandString(a.Value)
			if err != nil {
				return 1, err
			}
			in.env.Set(a.Name, v)
		}
		return 0, nil
	}

	stages := make([]Stage, 0, len(simples))
	for _, s := range simples {
		if len(s.Assigns) > 0 {
			// Per-command assignment prefixes would need process-local
			// environments; run them as global sets (close enough for
			// the benchmark corpus, where they don't appear mid-pipe).
			for _, a := range s.Assigns {
				v, err := x.ExpandString(a.Value)
				if err != nil {
					return 1, err
				}
				in.env.Set(a.Name, v)
			}
			if len(s.Args) == 0 {
				continue
			}
		}
		var argv []string
		for _, w := range s.Args {
			fs, err := x.ExpandWord(w)
			if err != nil {
				return 1, err
			}
			argv = append(argv, fs...)
		}
		if len(argv) == 0 {
			return 1, fmt.Errorf("core: empty command after expansion")
		}
		st := Stage{Name: argv[0], Args: argv[1:]}
		for _, r := range s.Redirs {
			tgt, err := x.ExpandString(r.Target)
			if err != nil {
				return 1, err
			}
			st.Redirs = append(st.Redirs, Redir{N: r.N, Op: r.Op, Target: tgt})
		}
		stages = append(stages, st)
	}
	if len(stages) == 0 {
		return 0, nil
	}

	// Builtins that affect interpreter state can't go through the DFG.
	if len(stages) == 1 {
		if code, handled, err := in.builtin(ctx, stages[0]); handled {
			return code, err
		}
	}

	g, err := in.c.CompilePipeline(stages, RegionIO{})
	if err != nil {
		return 1, err
	}
	in.c.Optimize(g)

	in.Stats.Regions++
	in.Stats.TotalNodes += len(g.Nodes)
	if len(g.Nodes) > in.Stats.MaxNodes {
		in.Stats.MaxNodes = len(g.Nodes)
	}

	rcfg := runtime.Config{
		BlockingEager:   in.c.Opts.BlockingEagerBytes,
		InputAwareSplit: in.c.Opts.InputAwareSplit,
		Dir:             in.dir,
		Env:             in.envSnapshot(),
	}
	if in.c.Opts.SplitMode == dfg.SplitGeneral {
		// Forcing the barrier strategy applies at execution too, not
		// just planning.
		rcfg.Split = runtime.SplitGeneral
	}
	start := time.Now()
	var res *runtime.Result
	if in.c.Opts.MeasureMode {
		res, err = runtime.Profile(ctx, g, in.c.Cmds, in.stdio, rcfg)
	} else {
		res, err = runtime.Execute(ctx, g, in.c.Cmds, in.stdio, rcfg)
	}
	if err != nil {
		return 1, err
	}
	in.profMu.Lock()
	in.Profiles = append(in.Profiles, RegionProfile{
		Graph: g, Times: res.NodeTimes, Wall: time.Since(start),
	})
	in.profMu.Unlock()
	return res.ExitCode, nil
}

func (in *Interp) envSnapshot() map[string]string {
	out := map[string]string{}
	for _, k := range in.env.Names() {
		out[k] = in.env.Get(k)
	}
	return out
}

// builtin handles the few commands that must mutate interpreter state.
func (in *Interp) builtin(ctx context.Context, st Stage) (int, bool, error) {
	switch st.Name {
	case "cd":
		if len(st.Args) != 1 {
			return 1, true, fmt.Errorf("cd: expected one argument")
		}
		dir := st.Args[0]
		if !strings.HasPrefix(dir, "/") {
			dir = in.dir + "/" + dir
		}
		in.dir = dir
		return 0, true, nil
	case "export":
		for _, a := range st.Args {
			if eq := strings.IndexByte(a, '='); eq > 0 {
				in.env.Set(a[:eq], a[eq+1:])
			}
		}
		return 0, true, nil
	case "wait":
		return 0, true, in.waitJobs()
	case "exec", "set", "umask", "ulimit":
		// Accepted and ignored: benchmark scripts use them only for
		// shell housekeeping.
		return 0, true, nil
	}
	_ = ctx
	return 0, false, nil
}

// Run is the package-level convenience: parse and execute a script with
// a fresh interpreter.
func Run(ctx context.Context, c *Compiler, src, dir string, vars map[string]string, stdio runtime.StdIO) (int, error) {
	in := NewInterp(c, dir, vars, stdio)
	return in.RunScript(ctx, src)
}
