package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/commands"
	"repro/internal/dfg"
	"repro/internal/runtime"
	"repro/internal/shell"
)

// Interp walks a shell AST, executing barriers sequentially and handing
// each parallelizable region (pipeline) to the compiler + runtime. It is
// the in-process analog of PaSh handing the transformed script to the
// user's shell (§2.3).
type Interp struct {
	c     *Compiler
	env   *shell.Env
	dir   string
	stdio runtime.StdIO

	// budget, when set, is the owning job's live resource accounting:
	// regions cap their width by it and runtime pipes charge queued
	// payload against it. Nested interpreters (subshells, command
	// substitution, compound pipeline stages) share the job's budget.
	budget *runtime.Budget
	// sandbox confines all file access to dir (untrusted scripts).
	sandbox bool
	// traffic accumulates live data-plane movement across every region
	// this interpreter (and its nested interpreters) executes, so a
	// running job's stats show bytes moved so far instead of zeros.
	traffic *runtime.Traffic

	jobMu sync.Mutex
	jobs  []chan jobResult

	statsMu sync.Mutex
	// Stats accumulates per-region compilation metrics for Tab. 2.
	// Read it only after RunScript returns (background jobs update it
	// concurrently while a script runs).
	Stats InterpStats

	profMu sync.Mutex
	// Profiles records each executed region's graph and measured node
	// times, feeding the multicore scheduling simulator.
	Profiles []RegionProfile
}

// jobResult is one background job's outcome.
type jobResult struct {
	code int
	err  error
}

// InterpStats aggregates region-level metrics.
type InterpStats struct {
	Regions    int
	TotalNodes int
	MaxNodes   int
	// PlanHits / PlanMisses count regions served from the compiler's
	// plan cache vs. compiled cold (a hit costs one graph clone; a miss
	// costs the full compile+optimize pass).
	PlanHits   int
	PlanMisses int
	// BytesMoved / ChunksMoved total the live data-plane traffic across
	// the interpreter's regions. They are filled by StatsSnapshot (from
	// the live meter), so they are meaningful mid-run, not only at exit.
	BytesMoved  int64
	ChunksMoved int64
}

// RegionProfile is one executed region's graph plus measured node times.
type RegionProfile struct {
	Graph *dfg.Graph
	Times []runtime.NodeTime
	Wall  time.Duration
}

// NewInterp builds an interpreter. vars seeds the variable environment
// (e.g. PASH_CURL_ROOT); dir is the working directory for file access.
func NewInterp(c *Compiler, dir string, vars map[string]string, stdio runtime.StdIO) *Interp {
	env := shell.NewEnv()
	for k, v := range vars {
		env.Set(k, v)
	}
	if stdio.Stdout == nil {
		stdio.Stdout = io.Discard
	}
	if stdio.Stderr == nil {
		stdio.Stderr = io.Discard
	}
	return &Interp{c: c, env: env, dir: dir, stdio: stdio, traffic: &runtime.Traffic{}}
}

// StatsSnapshot returns a consistent copy of the interpreter's region
// metrics plus the live traffic totals. Unlike reading Stats directly,
// it is safe while the script is still running — the Job API uses it to
// answer Stats() on in-flight (and never-finishing streaming) jobs.
func (in *Interp) StatsSnapshot() InterpStats {
	in.statsMu.Lock()
	st := in.Stats
	in.statsMu.Unlock()
	st.BytesMoved, st.ChunksMoved = in.traffic.Moved()
	return st
}

// UseBudget attaches a job's resource accounting (and sandbox flag) to
// the interpreter. Call before RunScript/RunParsed; nested interpreters
// inherit it automatically.
func (in *Interp) UseBudget(b *runtime.Budget, sandbox bool) {
	in.budget = b
	in.sandbox = sandbox
}

// RunScript parses and executes src, returning the final exit status.
func (in *Interp) RunScript(ctx context.Context, src string) (int, error) {
	list, err := shell.Parse(src)
	if err != nil {
		return 127, err
	}
	return in.RunParsed(ctx, list)
}

// RunParsed executes an already-parsed script, so callers that parse
// for validation (the Job API) do not pay the parse twice.
func (in *Interp) RunParsed(ctx context.Context, list *shell.List) (int, error) {
	code, err := in.runList(ctx, list)
	_, werr := in.waitJobs()
	if err == nil {
		err = werr
	}
	return code, err
}

// waitJobs drains the pending background jobs, returning the exit code
// of the last job (POSIX `wait` semantics) and the first error any job
// reported.
func (in *Interp) waitJobs() (int, error) {
	in.jobMu.Lock()
	jobs := in.jobs
	in.jobs = nil
	in.jobMu.Unlock()
	code := 0
	var firstErr error
	for _, j := range jobs {
		r := <-j
		code = r.code
		if firstErr == nil {
			firstErr = r.err
		}
	}
	return code, firstErr
}

func (in *Interp) runList(ctx context.Context, list *shell.List) (int, error) {
	code := 0
	for _, item := range list.Items {
		// Cancellation point: a cancelled job (Job.Cancel, a dropped
		// serve request) stops at the next statement boundary with the
		// shell's interrupted status.
		if err := ctx.Err(); err != nil {
			return 130, err
		}
		if item.Background {
			ch := make(chan jobResult, 1)
			in.jobMu.Lock()
			in.jobs = append(in.jobs, ch)
			in.jobMu.Unlock()
			cmd := item.Cmd
			go func() {
				var c int
				err := func() (err error) {
					defer runtime.Contain("background job", &err)
					c, err = in.runCommand(ctx, cmd)
					return err
				}()
				ch <- jobResult{code: c, err: err}
			}()
			code = 0
			continue
		}
		var err error
		code, err = in.runCommand(ctx, item.Cmd)
		if err != nil {
			return code, err
		}
	}
	return code, nil
}

func (in *Interp) runCommand(ctx context.Context, cmd shell.Command) (int, error) {
	switch cmd := cmd.(type) {
	case *shell.Simple:
		return in.runPipeline(ctx, []*shell.Simple{cmd})
	case *shell.Pipeline:
		stages := make([]*shell.Simple, 0, len(cmd.Cmds))
		for _, c := range cmd.Cmds {
			s, ok := c.(*shell.Simple)
			if !ok {
				// Compound stages stream through bounded pipes.
				return in.runCompoundPipeline(ctx, cmd)
			}
			stages = append(stages, s)
		}
		code, err := in.runPipeline(ctx, stages)
		if cmd.Negated {
			code = negate(code)
		}
		return code, err
	case *shell.AndOr:
		code, err := in.runCommand(ctx, cmd.First)
		if err != nil {
			return code, err
		}
		for _, part := range cmd.Rest {
			if part.Op == shell.AndOp && code != 0 {
				continue
			}
			if part.Op == shell.OrOp && code == 0 {
				continue
			}
			code, err = in.runCommand(ctx, part.Cmd)
			if err != nil {
				return code, err
			}
		}
		return code, nil
	case *shell.List:
		return in.runList(ctx, cmd)
	case *shell.For:
		x := in.expander()
		var items []string
		for _, w := range cmd.Items {
			fs, err := x.ExpandWord(w)
			if err != nil {
				return 1, err
			}
			items = append(items, fs...)
		}
		code := 0
		for _, it := range items {
			in.env.Set(cmd.Var, it)
			var err error
			code, err = in.runList(ctx, cmd.Body)
			if err != nil {
				return code, err
			}
		}
		return code, nil
	case *shell.If:
		condCode, err := in.runList(ctx, cmd.Cond)
		if err != nil {
			return condCode, err
		}
		if condCode == 0 {
			return in.runList(ctx, cmd.Then)
		}
		if cmd.Else != nil {
			return in.runList(ctx, cmd.Else)
		}
		return 0, nil
	case *shell.While:
		code := 0
		for iter := 0; ; iter++ {
			if iter > 1_000_000 {
				return 1, fmt.Errorf("core: while loop exceeded iteration limit")
			}
			condCode, err := in.runList(ctx, cmd.Cond)
			if err != nil {
				return condCode, err
			}
			stop := condCode != 0
			if cmd.Until {
				stop = condCode == 0
			}
			if stop {
				return code, nil
			}
			code, err = in.runList(ctx, cmd.Body)
			if err != nil {
				return code, err
			}
		}
	case *shell.Subshell:
		sub := &Interp{c: in.c, env: in.env.Child(), dir: in.dir, stdio: in.stdio, budget: in.budget, sandbox: in.sandbox, traffic: in.traffic}
		code, err := sub.runList(ctx, cmd.Body)
		if _, werr := sub.waitJobs(); err == nil {
			err = werr
		}
		return code, err
	case *shell.Brace:
		return in.runList(ctx, cmd.Body)
	}
	return 1, fmt.Errorf("core: unsupported command node %T", cmd)
}

func negate(code int) int {
	if code == 0 {
		return 1
	}
	return 0
}

// runCompoundPipeline executes a pipeline containing compound stages.
// Stages run concurrently, connected by bounded synchronous pipes (no
// unbounded intermediate buffers), each in a subshell scope. A stage
// that finishes without draining its input closes it, so upstream
// stages terminate with the SIGPIPE analog instead of blocking forever.
func (in *Interp) runCompoundPipeline(ctx context.Context, p *shell.Pipeline) (int, error) {
	n := len(p.Cmds)
	if n == 1 {
		// Not really a pipeline — a lone negated compound (`! { ...; }`).
		// POSIX runs it in the current environment, so assignments
		// persist; only real multi-stage pipelines get subshell scopes.
		sub := &Interp{c: in.c, env: in.env, dir: in.dir, stdio: in.stdio, budget: in.budget, sandbox: in.sandbox, traffic: in.traffic}
		code, err := sub.runCommand(ctx, p.Cmds[0])
		if _, werr := sub.waitJobs(); err == nil {
			err = werr
		}
		if p.Negated {
			code = negate(code)
		}
		return code, err
	}
	type stageResult struct {
		code int
		err  error
	}
	results := make([]stageResult, n)
	var wg sync.WaitGroup
	var prevReader *io.PipeReader // pipe feeding stage i; nil for the first
	for i, c := range p.Cmds {
		stdio := runtime.StdIO{Stderr: in.stdio.Stderr}
		if prevReader != nil {
			stdio.Stdin = prevReader
		} else {
			stdio.Stdin = in.stdio.Stdin
		}
		var pw *io.PipeWriter
		var nextReader *io.PipeReader
		if i == n-1 {
			stdio.Stdout = in.stdio.Stdout
		} else {
			nextReader, pw = io.Pipe()
			stdio.Stdout = pw
		}
		sub := &Interp{c: in.c, env: in.env.Child(), dir: in.dir, stdio: stdio, budget: in.budget, sandbox: in.sandbox, traffic: in.traffic}
		wg.Add(1)
		go func(i int, c shell.Command, sub *Interp, pw *io.PipeWriter, myInput *io.PipeReader) {
			defer wg.Done()
			var code int
			err := func() (err error) {
				defer runtime.Contain("pipeline stage", &err)
				code, err = sub.runCommand(ctx, c)
				return err
			}()
			if _, werr := sub.waitJobs(); err == nil {
				err = werr
			}
			if pw != nil {
				pw.CloseWithError(err)
			}
			if myInput != nil {
				// Unread input: closing delivers write errors upstream.
				myInput.Close()
			}
			if err != nil && errors.Is(err, io.ErrClosedPipe) {
				// Downstream exited early; normal pipeline behaviour.
				err = nil
			}
			results[i] = stageResult{code: code, err: err}
		}(i, c, sub, pw, prevReader)
		prevReader = nextReader
	}
	wg.Wait()
	code := results[n-1].code
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			firstErr = r.err
			break
		}
	}
	if p.Negated {
		code = negate(code)
	}
	return code, firstErr
}

// expander builds the word expander with command substitution wired to a
// nested sequential interpreter.
func (in *Interp) expander() *shell.Expander {
	return &shell.Expander{
		Env:  in.env,
		Glob: true,
		Dir:  in.dir,
		CmdSub: func(src string) (string, error) {
			var out bytes.Buffer
			sub := &Interp{
				c:       in.c,
				env:     in.env,
				dir:     in.dir,
				stdio:   runtime.StdIO{Stdin: strings.NewReader(""), Stdout: &out, Stderr: in.stdio.Stderr},
				budget:  in.budget,
				sandbox: in.sandbox,
				traffic: in.traffic,
			}
			list, err := shell.Parse(src)
			if err != nil {
				return "", err
			}
			if _, err := sub.runList(context.Background(), list); err != nil {
				return "", err
			}
			if _, werr := sub.waitJobs(); werr != nil {
				return "", werr
			}
			return out.String(), nil
		},
	}
}

// bareRedirs performs a command-less redirection list: POSIX `> out.txt`
// creates/truncates the target, `>> out.txt` creates it for append, and
// `< in.txt` verifies it is openable. Failures report to stderr with
// exit status 1, like a real shell.
func (in *Interp) bareRedirs(x *shell.Expander, redirs []*shell.Redir) (int, error) {
	osfs := commands.OSFS{Dir: in.dir, Jail: in.sandbox}
	for _, r := range redirs {
		tgt, err := x.ExpandString(r.Target)
		if err != nil {
			return 1, err
		}
		switch r.Op {
		case shell.RedirOut:
			w, err := osfs.Create(tgt)
			if err != nil {
				fmt.Fprintf(in.stdio.Stderr, "pash: %s: %v\n", tgt, err)
				return 1, nil
			}
			w.Close()
		case shell.RedirAppend:
			w, err := osfs.Append(tgt)
			if err != nil {
				fmt.Fprintf(in.stdio.Stderr, "pash: %s: %v\n", tgt, err)
				return 1, nil
			}
			w.Close()
		case shell.RedirIn:
			f, err := osfs.Open(tgt)
			if err != nil {
				fmt.Fprintf(in.stdio.Stderr, "pash: %s: %v\n", tgt, err)
				return 1, nil
			}
			f.Close()
		default:
			return 1, fmt.Errorf("core: unsupported bare redirection %s", r.Op)
		}
	}
	return 0, nil
}

// envOverride is one pending per-command assignment prefix.
type envOverride struct {
	name  string
	value string
}

// applyOverrides installs assignment-prefix values for the duration of a
// region's execution and returns the restore function. The prior values
// (or absence) come back afterward — the prefix scopes to the command
// instead of leaking into the script's environment.
func (in *Interp) applyOverrides(ovs []envOverride) func() {
	if len(ovs) == 0 {
		return func() {}
	}
	type saved struct {
		name    string
		value   string
		present bool
	}
	prior := make([]saved, 0, len(ovs))
	for _, ov := range ovs {
		v, ok := in.env.Lookup(ov.name)
		prior = append(prior, saved{name: ov.name, value: v, present: ok})
		in.env.Set(ov.name, ov.value)
	}
	return func() {
		// Restore in reverse so repeated names unwind correctly.
		for i := len(prior) - 1; i >= 0; i-- {
			s := prior[i]
			if s.present {
				in.env.Set(s.name, s.value)
			} else {
				in.env.Unset(s.name)
			}
		}
	}
}

// runPipeline expands the stages, plans the region (through the plan
// cache when one is configured), and executes it at the effective width
// the shared scheduler grants.
func (in *Interp) runPipeline(ctx context.Context, simples []*shell.Simple) (int, error) {
	x := in.expander()

	// A lone assignment command mutates the environment; a bare
	// redirection list opens/creates its targets.
	if len(simples) == 1 && len(simples[0].Args) == 0 {
		s := simples[0]
		for _, a := range s.Assigns {
			v, err := x.ExpandString(a.Value)
			if err != nil {
				return 1, err
			}
			in.env.Set(a.Name, v)
		}
		if len(s.Redirs) > 0 {
			return in.bareRedirs(x, s.Redirs)
		}
		return 0, nil
	}

	stages := make([]Stage, 0, len(simples))
	var overrides []envOverride
	for _, s := range simples {
		if len(s.Assigns) > 0 {
			if len(s.Args) == 0 {
				// Assignment-only stage inside a pipeline: it runs in a
				// subshell in a real shell, so its sets are invisible;
				// we keep the historical behaviour of applying them.
				for _, a := range s.Assigns {
					v, err := x.ExpandString(a.Value)
					if err != nil {
						return 1, err
					}
					in.env.Set(a.Name, v)
				}
				continue
			}
			// Per-command assignment prefixes (FOO=1 cmd) scope to the
			// command: expanded now (before the prefix could influence
			// its own argv, per POSIX), installed only around execution,
			// and restored afterward.
			for _, a := range s.Assigns {
				v, err := x.ExpandString(a.Value)
				if err != nil {
					return 1, err
				}
				overrides = append(overrides, envOverride{name: a.Name, value: v})
			}
		}
		var argv []string
		for _, w := range s.Args {
			fs, err := x.ExpandWord(w)
			if err != nil {
				return 1, err
			}
			argv = append(argv, fs...)
		}
		if len(argv) == 0 {
			return 1, fmt.Errorf("core: empty command after expansion")
		}
		st := Stage{Name: argv[0], Args: argv[1:]}
		for _, r := range s.Redirs {
			if r.Op == shell.RedirHeredoc {
				// The delimiter is never expanded; the body is, but only
				// when the delimiter was written unquoted (POSIX).
				body := r.Heredoc
				if r.Target.Bare {
					bw, err := shell.ParseHeredocBody(body)
					if err != nil {
						return 1, err
					}
					body, err = x.ExpandString(bw)
					if err != nil {
						return 1, err
					}
				}
				st.Redirs = append(st.Redirs, Redir{N: r.N, Op: r.Op, Body: body})
				continue
			}
			tgt, err := x.ExpandString(r.Target)
			if err != nil {
				return 1, err
			}
			st.Redirs = append(st.Redirs, Redir{N: r.N, Op: r.Op, Target: tgt})
		}
		stages = append(stages, st)
	}
	if len(stages) == 0 {
		return 0, nil
	}

	// Builtins that affect interpreter state can't go through the DFG.
	if len(stages) == 1 {
		if code, handled, err := in.builtin(ctx, stages[0]); handled {
			return code, err
		}
	}

	// Control plane: fingerprint the region, consult the measured
	// history for a width hint, take width tokens from the shared
	// scheduler, then plan (cache hit: clone; miss: compile+optimize).
	rkey := regionKey(stages)
	// The job's replica budget caps the width before the scheduler is
	// even asked, so an over-budget region never takes tokens it cannot
	// use.
	eff := in.budget.CapWidth(in.c.Opts.Width)
	if in.c.Sched != nil {
		// Multi-tenant instantiation: measured history first (regions
		// too short to amortize parallelism run sequentially), then the
		// shared token pool caps what the machine can spare right now.
		want := eff
		if in.c.Plans != nil {
			want = in.budget.CapWidth(in.c.Plans.widthHint(rkey, want))
		}
		var release func()
		eff, release = in.c.Sched.AcquireWidth(want)
		defer release()
	}
	g, hit, err := in.c.planRegion(stages, rkey, eff)
	if err != nil {
		return 1, err
	}

	in.statsMu.Lock()
	in.Stats.Regions++
	in.Stats.TotalNodes += len(g.Nodes)
	if len(g.Nodes) > in.Stats.MaxNodes {
		in.Stats.MaxNodes = len(g.Nodes)
	}
	if hit {
		in.Stats.PlanHits++
	} else {
		in.Stats.PlanMisses++
	}
	in.statsMu.Unlock()

	restore := in.applyOverrides(overrides)
	defer restore()

	rcfg := runtime.Config{
		BlockingEager:   in.c.Opts.BlockingEagerBytes,
		InputAwareSplit: in.c.Opts.InputAwareSplit,
		Dir:             in.dir,
		Env:             in.envSnapshot(),
		Budget:          in.budget,
		Sandbox:         in.sandbox,
		Traffic:         in.traffic,
	}
	if in.c.Workers != nil {
		rcfg.Remote = in.c.Workers
	}
	if in.c.Opts.SplitMode == dfg.SplitGeneral {
		// Forcing the barrier strategy applies at execution too, not
		// just planning.
		rcfg.Split = runtime.SplitGeneral
	}
	start := time.Now()
	var res *runtime.Result
	if in.c.Opts.MeasureMode {
		res, err = runtime.Profile(ctx, g, in.c.Cmds, in.stdio, rcfg)
	} else {
		res, err = runtime.Execute(ctx, g, in.c.Cmds, in.stdio, rcfg)
	}
	if err != nil {
		return 1, err
	}
	wall := time.Since(start)
	if in.c.Plans != nil && in.c.Sched != nil && !in.c.Opts.MeasureMode {
		// Close the JIT loop: the measured wall feeds the next
		// instantiation's width hint. Only scheduled (multi-tenant)
		// sessions consult the hint, so only they pay the bookkeeping.
		in.c.Plans.noteRun(rkey, wall)
	}
	in.profMu.Lock()
	in.Profiles = append(in.Profiles, RegionProfile{
		Graph: g, Times: res.NodeTimes, Wall: wall,
	})
	in.profMu.Unlock()
	return res.ExitCode, nil
}

func (in *Interp) envSnapshot() map[string]string {
	out := map[string]string{}
	for _, k := range in.env.Names() {
		out[k] = in.env.Get(k)
	}
	return out
}

// builtin handles the few commands that must mutate interpreter state.
func (in *Interp) builtin(ctx context.Context, st Stage) (int, bool, error) {
	switch st.Name {
	case "cd":
		if len(st.Args) != 1 {
			return 1, true, fmt.Errorf("cd: expected one argument")
		}
		dir := st.Args[0]
		if in.sandbox && (strings.HasPrefix(dir, "/") || strings.Contains(dir, "..")) {
			fmt.Fprintf(in.stdio.Stderr, "pash: cd: %s: %v\n", dir, commands.ErrJailEscape)
			return 1, true, nil
		}
		if !strings.HasPrefix(dir, "/") {
			dir = in.dir + "/" + dir
		}
		in.dir = dir
		return 0, true, nil
	case "export":
		for _, a := range st.Args {
			if eq := strings.IndexByte(a, '='); eq > 0 {
				in.env.Set(a[:eq], a[eq+1:])
			}
		}
		return 0, true, nil
	case "wait":
		code, err := in.waitJobs()
		return code, true, err
	case "exec", "set", "umask", "ulimit":
		// Accepted and ignored: benchmark scripts use them only for
		// shell housekeeping.
		return 0, true, nil
	}
	_ = ctx
	return 0, false, nil
}

// Run is the package-level convenience: parse and execute a script with
// a fresh interpreter.
func Run(ctx context.Context, c *Compiler, src, dir string, vars map[string]string, stdio runtime.StdIO) (int, error) {
	in := NewInterp(c, dir, vars, stdio)
	return in.RunScript(ctx, src)
}
