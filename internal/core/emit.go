package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dfg"
	"repro/internal/shell"
)

// Plan is an ahead-of-time compilation of a script: a sequence of items
// that are either verbatim shell fragments (barriers, dynamic regions)
// or optimized dataflow graphs ready to be emitted as explicit parallel
// shell code (§5.2, Fig. 3).
type Plan struct {
	Items []PlanItem
}

// PlanItem is one element of a plan.
type PlanItem struct {
	// Verbatim carries unparallelized shell source (when Graph is nil).
	Verbatim string
	// Graph is a compiled, optimized region.
	Graph *dfg.Graph
	// Background marks items followed by &.
	Background bool
}

// Plan compiles src ahead of time. Regions whose words are fully static
// (after constant propagation of static assignments) are lifted and
// optimized for emission (barrier splits, no fusion — the constraints
// of real processes and FIFOs); everything else is preserved verbatim —
// PaSh's conservative treatment of incomplete information (§5.1).
func (c *Compiler) Plan(src string) (*Plan, error) {
	return c.plan(src, true)
}

// PlanExec compiles like Plan but optimizes each region for in-process
// execution: stage fusion on, streaming splits where sound — the graphs
// the interpreter would actually run. Its items carry KindFused nodes
// and so cannot be emitted as a shell script; use it for inspection
// (Plan.Dot, `pash -graph`).
func (c *Compiler) PlanExec(src string) (*Plan, error) {
	return c.plan(src, false)
}

func (c *Compiler) plan(src string, emission bool) (*Plan, error) {
	list, err := shell.Parse(src)
	if err != nil {
		return nil, err
	}
	p := &Plan{}
	env := shell.NewEnv()
	c.planList(p, list, env, emission)
	return p, nil
}

// planList walks a list, lifting what it can.
func (c *Compiler) planList(p *Plan, list *shell.List, env *shell.Env, emission bool) {
	for _, item := range list.Items {
		c.planCommand(p, item.Cmd, env, item.Background, emission)
	}
}

func (c *Compiler) planCommand(p *Plan, cmd shell.Command, env *shell.Env, background, emission bool) {
	verbatim := func() {
		p.Items = append(p.Items, PlanItem{Verbatim: shell.Print(cmd), Background: background})
	}
	switch cmd := cmd.(type) {
	case *shell.Simple:
		// Track static assignments for constant propagation.
		if len(cmd.Args) == 0 {
			x := &shell.Expander{Env: env}
			ok := true
			for _, a := range cmd.Assigns {
				v, err := x.ExpandString(a.Value)
				if err != nil {
					ok = false
					break
				}
				env.Set(a.Name, v)
			}
			_ = ok
			p.Items = append(p.Items, PlanItem{Verbatim: shell.Print(cmd), Background: background})
			return
		}
		if g, ok := c.tryCompileStatic([]*shell.Simple{cmd}, env, emission); ok {
			p.Items = append(p.Items, PlanItem{Graph: g, Background: background})
			return
		}
		verbatim()
	case *shell.Pipeline:
		var simples []*shell.Simple
		for _, s := range cmd.Cmds {
			sc, ok := s.(*shell.Simple)
			if !ok {
				verbatim()
				return
			}
			simples = append(simples, sc)
		}
		if cmd.Negated {
			verbatim()
			return
		}
		if g, ok := c.tryCompileStatic(simples, env, emission); ok {
			p.Items = append(p.Items, PlanItem{Graph: g, Background: background})
			return
		}
		verbatim()
	default:
		// Compound commands are barriers; their bodies could be planned
		// recursively, but loop/conditional variables make inner regions
		// dynamic, so we keep them verbatim (the interpreter handles
		// them with full dynamic information instead).
		verbatim()
	}
}

// tryCompileStatic compiles a pipeline if every word expands statically
// (undefined variables count as dynamic — the conservative default).
func (c *Compiler) tryCompileStatic(simples []*shell.Simple, env *shell.Env, emission bool) (*dfg.Graph, bool) {
	x := &shell.Expander{Env: env, Strict: true}
	var stages []Stage
	for _, s := range simples {
		if len(s.Assigns) > 0 {
			return nil, false
		}
		var argv []string
		for _, w := range s.Args {
			fs, err := x.ExpandWord(w)
			if err != nil {
				return nil, false
			}
			argv = append(argv, fs...)
		}
		if len(argv) == 0 {
			return nil, false
		}
		st := Stage{Name: argv[0], Args: argv[1:]}
		for _, r := range s.Redirs {
			tgt, err := x.ExpandString(r.Target)
			if err != nil {
				return nil, false
			}
			st.Redirs = append(st.Redirs, Redir{N: r.N, Op: r.Op, Target: tgt})
		}
		stages = append(stages, st)
	}
	g, err := c.CompilePipeline(stages, RegionIO{})
	if err != nil {
		return nil, false
	}
	if emission {
		c.OptimizeForEmission(g)
	} else {
		c.Optimize(g)
		// The execution view distributes exactly as the interpreter
		// would, so Plan.Dot shows the shard map.
		c.distribute(g, c.Opts.Width)
	}
	return g, true
}

// Emit renders the plan as a runnable POSIX script in the style of
// Fig. 3: named pipes, background jobs, a wait on the output producers,
// and PIPE-signal cleanup for stragglers. Runtime primitives (split,
// eager relays, custom aggregators) are invoked through the pash-prims
// helper binary, resolved via $PASH_PRIMS (default: pash-prims on PATH).
func (p *Plan) Emit(w io.Writer) error {
	fmt.Fprintln(w, "#!/bin/sh")
	fmt.Fprintln(w, "# Generated by pash: do not edit.")
	fmt.Fprintln(w, `: "${PASH_PRIMS:=pash-prims}"`)
	for i, item := range p.Items {
		if item.Graph == nil {
			fmt.Fprint(w, item.Verbatim)
			if item.Background {
				fmt.Fprint(w, " &")
			}
			fmt.Fprintln(w)
			continue
		}
		if err := emitGraph(w, item.Graph, i); err != nil {
			return err
		}
		if item.Background {
			// A whole region in the background would need job grouping;
			// regions already end with their own wait, so wrap in a
			// subshell.
			fmt.Fprintln(w, "# (region above runs in the foreground; & grouping unsupported)")
		}
	}
	return nil
}

// emitGraph renders one region.
func emitGraph(w io.Writer, g *dfg.Graph, regionID int) error {
	var b strings.Builder
	tmp := fmt.Sprintf("$pash_tmp_%d", regionID)
	fmt.Fprintf(&b, "# --- pash region %d (%d nodes) ---\n", regionID, len(g.Nodes))
	fmt.Fprintf(&b, "pash_tmp_%d=$(mktemp -d)\n", regionID)

	fifo := func(e *dfg.Edge) string { return fmt.Sprintf("%s/e%d", tmp, e.ID) }

	// Declare FIFOs for internal edges; eager edges get a second fifo on
	// the consumer side of the relay.
	for _, e := range g.Edges {
		if e.From != nil && e.To != nil {
			fmt.Fprintf(&b, "mkfifo %q\n", fifo(e))
			if e.Eager {
				fmt.Fprintf(&b, "mkfifo %q.eager\n", fifo(e))
			}
		}
	}

	// streamName resolves an edge to the name a consumer reads.
	readName := func(e *dfg.Edge) string {
		switch {
		case e.From == nil && e.Source.Kind == dfg.BindFile:
			return e.Source.Path
		case e.Eager:
			return fifo(e) + ".eager"
		default:
			return fifo(e)
		}
	}

	// Each background job's PID is appended to pash_pids so the cleanup
	// can signal stragglers (§5.2 Dangling FIFOs and Zombie Producers).
	fmt.Fprintf(&b, "pash_pids=\"\"\n")
	// Eager relays first (they must be reading before producers run into
	// full pipes, though FIFO opens synchronize either way).
	for _, e := range g.Edges {
		if e.Eager && e.From != nil && e.To != nil {
			fmt.Fprintf(&b, "\"$PASH_PRIMS\" eager < %q > %q &\n", fifo(e), fifo(e)+".eager")
			fmt.Fprintf(&b, "pash_pids=\"$pash_pids $!\"\n")
		}
	}

	haveOut := false
	for _, n := range g.Nodes {
		line, isOutput, err := renderNode(n, fifo, readName)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s &\n", line)
		if isOutput {
			haveOut = true
			fmt.Fprintf(&b, "pash_out=$!\n")
		} else {
			fmt.Fprintf(&b, "pash_pids=\"$pash_pids $!\"\n")
		}
	}
	if haveOut {
		// Block only on the region's output producer, then deliver PIPE
		// to any remaining upstream processes.
		fmt.Fprintf(&b, "wait $pash_out\n")
	}
	fmt.Fprintf(&b, "kill -PIPE $pash_pids 2>/dev/null\n")
	fmt.Fprintf(&b, "wait\n")
	fmt.Fprintf(&b, "rm -rf %q\n", tmp)
	fmt.Fprintf(&b, "# --- end region %d ---\n", regionID)
	_, err := io.WriteString(w, b.String())
	return err
}

// renderNode renders one node as a shell command line (without the
// trailing &). It reports whether the node feeds the region's primary
// output.
func renderNode(n *dfg.Node, fifo func(*dfg.Edge) string, readName func(*dfg.Edge) string) (string, bool, error) {
	var parts []string
	switch {
	case n.Kind == dfg.KindFused:
		// Fused nodes exist only in-process; OptimizeForEmission keeps
		// them out of emitted graphs.
		return "", false, fmt.Errorf("core: fused node %s cannot be emitted as shell", n)
	case n.Kind == dfg.KindSplit:
		parts = append(parts, `"$PASH_PRIMS"`, "split")
		parts = append(parts, shellQuote(readName(n.In[0])))
		for _, e := range n.Out {
			parts = append(parts, shellQuote(fifo(e)))
		}
		return strings.Join(parts, " "), false, nil
	case strings.HasPrefix(n.Name, "pash-agg-"):
		parts = append(parts, `"$PASH_PRIMS"`, strings.TrimPrefix(n.Name, "pash-"))
	default:
		parts = append(parts, shellQuote(n.Name))
	}
	for _, a := range n.Args {
		if a.InputIdx >= 0 {
			parts = append(parts, shellQuote(readName(n.In[a.InputIdx])))
			continue
		}
		parts = append(parts, shellQuote(a.Text))
	}
	// Stdin redirection.
	if n.StdinInput >= 0 {
		e := n.In[n.StdinInput]
		switch {
		case e.From == nil && e.Source.Kind == dfg.BindFile:
			parts = append(parts, "<", shellQuote(e.Source.Path))
		case e.From == nil && e.Source.Kind == dfg.BindStdin:
			// Inherit the script's stdin.
		case e.From == nil && e.Source.Kind == dfg.BindLiteral:
			// Heredoc payload: feed the literal body through a pipe so the
			// rendering stays one line (a real heredoc would need its body
			// after the command's newline, which the emitter's line-per-node
			// layout cannot accommodate).
			parts = append([]string{"printf", "%s", shellQuote(e.Source.Data), "|"}, parts...)
		case e.From == nil:
			parts = append(parts, "<", "/dev/null")
		default:
			parts = append(parts, "<", shellQuote(readName(e)))
		}
	}
	// Stdout redirection.
	isOutput := false
	if len(n.Out) > 0 && n.Kind != dfg.KindSplit {
		e := n.Out[0]
		switch {
		case e.To != nil:
			parts = append(parts, ">", shellQuote(fifo(e)))
		case e.Sink.Kind == dfg.BindFile && e.Sink.Append:
			parts = append(parts, ">>", shellQuote(e.Sink.Path))
			isOutput = true
		case e.Sink.Kind == dfg.BindFile:
			parts = append(parts, ">", shellQuote(e.Sink.Path))
			isOutput = true
		case e.Sink.Kind == dfg.BindNone:
			parts = append(parts, ">", "/dev/null")
		default:
			isOutput = true // stdout
		}
	}
	return strings.Join(parts, " "), isOutput, nil
}

// shellQuote quotes a string for safe inclusion in generated scripts.
func shellQuote(s string) string {
	if s == "" {
		return "''"
	}
	if strings.HasPrefix(s, "$pash_tmp_") {
		// FIFO paths embed the tmpdir variable on purpose.
		return `"` + s + `"`
	}
	safe := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '/' || c == ':' || c == ',' || c == '+' || c == '=' || c == '%' || c == '@') {
			safe = false
			break
		}
	}
	if safe {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}
