// Package core is PaSh's compiler: it finds parallelizable regions in a
// POSIX shell script (§5.1), lifts them to the dataflow-graph model,
// applies the parallelization transformations (§4.2), and either executes
// the result on the in-process runtime or emits an explicit parallel
// POSIX script (§5.2, Fig. 3).
package core

import (
	"repro/internal/agg"
	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/dfg"
	"repro/internal/runtime"
)

// Options selects the degree of parallelism and which runtime primitives
// are in play — the knobs behind the configurations of Fig. 7.
type Options struct {
	// Width is the parallelism factor (1 disables parallelization).
	Width int
	// Split enables split insertion (t2).
	Split bool
	// InputAwareSplit uses the seek-based split for file inputs.
	InputAwareSplit bool
	// SplitMode selects among the three split strategies (barrier,
	// input-aware, streaming round-robin); the zero value (SplitAuto)
	// streams wherever that is sound. See dfg.SplitMode.
	SplitMode dfg.SplitMode
	// Eager selects edge eagerness (§5.2 Overcoming Laziness).
	Eager dfg.EagerMode
	// BlockingEagerBytes bounds eager buffers (Blocking Eager config);
	// 0 = unbounded eager buffers.
	BlockingEagerBytes int
	// DisableFusion turns off the stage-fusion pass that collapses
	// chains of kernel-capable stateless commands into single fused
	// nodes (dfg.KindFused). Fusion is on by default for in-process
	// execution; emission always disables it (fused nodes have no shell
	// rendering).
	DisableFusion bool
	// AggFanIn shapes the aggregation stage of parallelized pure
	// commands: 0 = automatic (fan-in-4 trees for associative
	// aggregators once width >= 8), negative = always flat, k >= 2 =
	// fan-in-k trees. See dfg.Options.AggFanIn.
	AggFanIn int
	// MeasureMode runs regions through the profiling executor (nodes
	// sequential, unbounded buffers) to collect clean per-node works
	// for the multicore scheduling simulator. Output is identical.
	MeasureMode bool
}

// DefaultOptions is the configuration the paper calls "Par + Split".
func DefaultOptions(width int) Options {
	return Options{
		Width: width,
		Split: true,
		Eager: dfg.EagerFull,
	}
}

// Compiler holds the registries the compilation pipeline consults plus
// the shared control-plane state: the plan cache and, optionally, the
// machine-wide scheduler. A Compiler value is treated as an immutable
// snapshot during a run — mutators (the pash session layer) replace
// registries copy-on-write and swap in a fresh struct rather than
// mutating one a concurrent run may be reading.
type Compiler struct {
	Annot *annot.Registry
	Cmds  *commands.Registry
	Opts  Options

	// Plans caches planned+optimized region templates keyed by the
	// canonical region fingerprint and planning options; nil disables
	// caching (every region compiles cold).
	Plans *PlanCache

	// Sched, when set, chooses each region's effective width from the
	// shared worker-token pool at instantiation time instead of
	// unconditionally claiming Opts.Width replicas.
	Sched *runtime.Scheduler

	// Workers, when set, stretches the data plane across machines:
	// planned regions are partitioned (dfg.Distribute) so stateless
	// chains execute on pool workers, and the plan cache key embeds the
	// pool fingerprint so membership changes re-plan by construction.
	Workers WorkerPool
}

// WorkerPool is the distributed data plane's attachment point: the
// compiler consults membership while planning, the plan cache keys on
// the fingerprint, and the runtime ships KindRemote nodes through the
// embedded executor. internal/dist.Pool is the implementation.
type WorkerPool interface {
	runtime.RemoteExecutor
	// WorkerNames lists the healthy workers in dispatch order.
	WorkerNames() []string
	// SharedFS reports whether workers can open the coordinator's files
	// by the same paths (enables file-range shards).
	SharedFS() bool
	// Fingerprint canonically identifies the current membership epoch.
	Fingerprint() string
}

// NewCompiler builds a compiler over the standard annotation and command
// registries with the given options and a default-sized plan cache.
func NewCompiler(opts Options) *Compiler {
	reg := commands.NewStd()
	agg.Install(reg)
	return &Compiler{
		Annot: annot.StdRegistry(),
		Cmds:  reg,
		Opts:  opts,
		Plans: NewPlanCache(0),
	}
}

func (c *Compiler) dfgOptions() dfg.Options {
	return dfg.Options{
		Width:           c.Opts.Width,
		Split:           c.Opts.Split,
		InputAwareSplit: c.Opts.InputAwareSplit,
		SplitMode:       c.Opts.SplitMode,
		Eager:           c.Opts.Eager,
		KernelCapable:   c.Cmds.KernelCapable,
		DisableFusion:   c.Opts.DisableFusion,
		AggFanIn:        c.Opts.AggFanIn,
	}
}
