package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/commands"
	"repro/internal/runtime"
)

// runInterp executes src on a fresh interpreter over compiler c,
// returning stdout and the interpreter's stats.
func runInterp(t *testing.T, c *Compiler, src, stdin, dir string) (string, InterpStats) {
	t.Helper()
	var out bytes.Buffer
	in := NewInterp(c, dir, nil, runtime.StdIO{Stdin: strings.NewReader(stdin), Stdout: &out, Stderr: os.Stderr})
	if _, err := in.RunScript(context.Background(), src); err != nil {
		t.Fatalf("script failed: %v\nscript: %s", err, src)
	}
	return out.String(), in.Stats
}

func TestPlanCacheHitOutputIdentical(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte(corpus(400)), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `for i in 1 2 3 4 5; do cut -d ' ' -f1 a.txt | grep o | sort | uniq -c | head -n 4; done`

	cold := NewCompiler(DefaultOptions(4))
	cold.Plans = nil // every region compiles cold
	wantOut, wantStats := runInterp(t, cold, src, "", dir)

	cached := NewCompiler(DefaultOptions(4))
	gotOut, gotStats := runInterp(t, cached, src, "", dir)

	if gotOut != wantOut {
		t.Errorf("cached output diverged from cold compile:\n--- cold:\n%s--- cached:\n%s", clip(wantOut), clip(gotOut))
	}
	if gotStats.PlanMisses != 1 || gotStats.PlanHits != 4 {
		t.Errorf("cache stats: hits=%d misses=%d, want 4/1", gotStats.PlanHits, gotStats.PlanMisses)
	}
	if wantStats.PlanHits != 0 {
		t.Errorf("cold compiler reported hits: %+v", wantStats)
	}
	// Graph shape survives the cache round-trip.
	if gotStats.TotalNodes != wantStats.TotalNodes || gotStats.MaxNodes != wantStats.MaxNodes {
		t.Errorf("node stats diverged: cold %+v cached %+v", wantStats, gotStats)
	}
	if s := cached.Plans.Stats(); s.Hits != 4 || s.Entries != 1 {
		t.Errorf("cache-level stats = %+v", s)
	}
}

// TestPlanKeyIncludesRegistryGeneration: registering into the command
// or annotation registry must invalidate cached plans by construction,
// even when the cache object itself survives — the plan key carries
// both registry generations.
func TestPlanKeyIncludesRegistryGeneration(t *testing.T) {
	c := NewCompiler(DefaultOptions(4))
	// NewCompiler shares the process-wide annotation registry; clone it
	// before mutating so this test's registrations stay private.
	c.Annot = c.Annot.Clone()
	stages := []Stage{{Name: "grep", Args: []string{"x"}}, {Name: "wc", Args: []string{"-l"}}}

	if _, hit, err := c.PlanRegion(stages, 4); err != nil || hit {
		t.Fatalf("first plan: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.PlanRegion(stages, 4); err != nil || !hit {
		t.Fatalf("second plan should hit: hit=%v err=%v", hit, err)
	}

	// A command registration bumps the registry generation: same cache,
	// same region, but the stale template must not be served.
	c.Cmds.Register("grep", func(ctx *commands.Context) error { return nil })
	if _, hit, err := c.PlanRegion(stages, 4); err != nil || hit {
		t.Fatalf("plan after command registration should miss: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.PlanRegion(stages, 4); err != nil || !hit {
		t.Fatalf("re-plan should hit again: hit=%v err=%v", hit, err)
	}

	// Same for annotation registrations.
	if err := c.Annot.Register(`grep { | _ => (E, [], []) }`); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.PlanRegion(stages, 4); err != nil || hit {
		t.Fatalf("plan after annotation registration should miss: hit=%v err=%v", hit, err)
	}
}

func TestPlanCacheEnvDependentArgvMisses(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte(corpus(100)), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(DefaultOptions(4))
	// The loop variable lands in argv, so every iteration re-plans.
	_, stats := runInterp(t, c, `for p in quick lazy fox; do grep $p a.txt | wc -l; done`, "", dir)
	if stats.PlanHits != 0 || stats.PlanMisses != 3 {
		t.Errorf("env-dependent argv: hits=%d misses=%d, want 0/3", stats.PlanHits, stats.PlanMisses)
	}
	// Re-running the same values now hits.
	_, stats = runInterp(t, c, `for p in quick lazy fox; do grep $p a.txt | wc -l; done`, "", dir)
	if stats.PlanHits != 3 || stats.PlanMisses != 0 {
		t.Errorf("re-run: hits=%d misses=%d, want 3/0", stats.PlanHits, stats.PlanMisses)
	}
}

func TestPlanCacheKeyIncludesRedirsAndWidth(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte(corpus(50)), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCompiler(DefaultOptions(4))
	_, stats := runInterp(t, c, "sort a.txt > o1.txt\nsort a.txt > o2.txt\nsort a.txt > o1.txt", "", dir)
	// Distinct redirect targets are distinct plans; the repeat hits.
	if stats.PlanMisses != 2 || stats.PlanHits != 1 {
		t.Errorf("redir keying: hits=%d misses=%d, want 1/2", stats.PlanHits, stats.PlanMisses)
	}
	// A width change re-plans rather than reusing the width-4 template.
	c.Opts.Width = 2
	_, stats = runInterp(t, c, "sort a.txt > o1.txt", "", dir)
	if stats.PlanMisses != 1 {
		t.Errorf("width change should miss, got %+v", stats)
	}
}

// TestPlanCacheControlPlaneSpeedup is the acceptance gate: a
// 1000-iteration loop of a fixed pipeline must pay >= 5x less
// control-plane time via the cache than compiling cold each iteration.
func TestPlanCacheControlPlaneSpeedup(t *testing.T) {
	stages := fixedPipelineStages()
	const iters = 1000

	cold := NewCompiler(DefaultOptions(8))
	cold.Plans = nil
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := cold.planRegion(stages, regionKey(stages), 8); err != nil {
			t.Fatal(err)
		}
	}
	coldDur := time.Since(start)

	cached := NewCompiler(DefaultOptions(8))
	start = time.Now()
	for i := 0; i < iters; i++ {
		rk := regionKey(stages)
		if _, _, err := cached.planRegion(stages, rk, 8); err != nil {
			t.Fatal(err)
		}
	}
	cachedDur := time.Since(start)

	speedup := float64(coldDur) / float64(cachedDur)
	t.Logf("control plane: cold %v, cached %v (%.1fx) over %d iterations",
		coldDur, cachedDur, speedup, iters)
	if raceEnabled {
		t.Skip("race instrumentation distorts the cold/cached ratio; assertion runs in the non-race suite")
	}
	if speedup < 5 {
		t.Errorf("plan cache speedup %.1fx < 5x (cold %v, cached %v)", speedup, coldDur, cachedDur)
	}
	if s := cached.Plans.Stats(); s.Hits != iters-1 || s.Misses != 1 {
		t.Errorf("cache stats = %+v", s)
	}
}

// fixedPipelineStages is the benchmark region: a realistic 4-stage
// pipeline (the loop body of `for f in *; do cut | grep | sort | wc;
// done`), pre-expanded.
func fixedPipelineStages() []Stage {
	return []Stage{
		{Name: "cut", Args: []string{"-d", " ", "-f1"}},
		{Name: "grep", Args: []string{"o"}},
		{Name: "sort", Args: nil},
		{Name: "wc", Args: []string{"-l"}},
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	pc := NewPlanCache(2)
	c := NewCompiler(DefaultOptions(2))
	c.Plans = pc
	mk := func(pat string) []Stage {
		return []Stage{{Name: "grep", Args: []string{pat}}, {Name: "wc", Args: []string{"-l"}}}
	}
	for _, pat := range []string{"a", "b", "c"} {
		s := mk(pat)
		if _, _, err := c.planRegion(s, regionKey(s), 2); err != nil {
			t.Fatal(err)
		}
	}
	if s := pc.Stats(); s.Entries != 2 {
		t.Errorf("entries = %d, want 2 (LRU cap)", s.Entries)
	}
	// "a" was evicted; "c" still resident.
	sa, sc := mk("a"), mk("c")
	if _, hit, _ := c.planRegion(sc, regionKey(sc), 2); !hit {
		t.Error("most-recent entry should hit")
	}
	if _, hit, _ := c.planRegion(sa, regionKey(sa), 2); hit {
		t.Error("evicted entry should miss")
	}
}

func TestWidthHintDegradesTinyRegions(t *testing.T) {
	pc := NewPlanCache(0)
	rk := "region"
	if w := pc.widthHint(rk, 8); w != 8 {
		t.Errorf("no history: hint = %d, want 8", w)
	}
	pc.noteRun(rk, 50*time.Microsecond)
	if w := pc.widthHint(rk, 8); w != 1 {
		t.Errorf("tiny region: hint = %d, want 1", w)
	}
	// A large measured wall restores the requested width (EWMA moves).
	for i := 0; i < 8; i++ {
		pc.noteRun(rk, 50*time.Millisecond)
	}
	if w := pc.widthHint(rk, 8); w != 8 {
		t.Errorf("large region: hint = %d, want 8", w)
	}
	if s := pc.Stats(); s.SeqHints != 1 {
		t.Errorf("seq hints = %d, want 1", s.SeqHints)
	}
}

// --- satellite coverage -------------------------------------------------

func TestBareRedirectionCreatesFiles(t *testing.T) {
	dir := t.TempDir()
	// Creation.
	runScript(t, Options{Width: 1}, "> fresh.txt", "", dir, nil)
	if fi, err := os.Stat(filepath.Join(dir, "fresh.txt")); err != nil || fi.Size() != 0 {
		t.Fatalf("bare > did not create: %v", err)
	}
	// Truncation of existing content.
	full := filepath.Join(dir, "full.txt")
	if err := os.WriteFile(full, []byte("content\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runScript(t, Options{Width: 1}, "> full.txt", "", dir, nil)
	if data, _ := os.ReadFile(full); len(data) != 0 {
		t.Fatalf("bare > did not truncate, %d bytes left", len(data))
	}
	// Append creates but preserves.
	if err := os.WriteFile(full, []byte("keep\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runScript(t, Options{Width: 1}, ">> full.txt\n>> appended.txt", "", dir, nil)
	if data, _ := os.ReadFile(full); string(data) != "keep\n" {
		t.Fatalf("bare >> clobbered content: %q", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "appended.txt")); err != nil {
		t.Fatalf("bare >> did not create: %v", err)
	}
	// Missing input target fails with status 1 (not a fatal error).
	_, code, err := runScriptCode(t, Options{Width: 1}, "< missing.txt", "", dir, nil)
	if err != nil || code != 1 {
		t.Errorf("bare < missing: code=%d err=%v, want 1/nil", code, err)
	}
	// Variable expansion in the target.
	runScript(t, Options{Width: 1}, "name=var.txt; > $name", "", dir, nil)
	if _, err := os.Stat(filepath.Join(dir, "var.txt")); err != nil {
		t.Fatalf("expanded bare redir target: %v", err)
	}
}

func TestAssignmentPrefixScopedToCommand(t *testing.T) {
	// The prefix does not leak into the script environment afterward.
	got := runScript(t, Options{Width: 1}, "FOO=outer; FOO=inner true; echo [$FOO]", "", "", nil)
	if got != "[outer]\n" {
		t.Errorf("prefix leaked: %q", got)
	}
	// A previously-unset variable is unset again afterward.
	got = runScript(t, Options{Width: 1}, "BAR=tmp true; echo [$BAR]", "", "", nil)
	if got != "[]\n" {
		t.Errorf("prefix left residue: %q", got)
	}
	// POSIX: the prefix is not visible to the command's own argv
	// expansion.
	got = runScript(t, Options{Width: 1}, "BAZ=v echo [$BAZ]", "", "", nil)
	if got != "[]\n" {
		t.Errorf("prefix visible to own expansion: %q", got)
	}
	// Prefixes on pipeline stages restore too.
	got = runScript(t, Options{Width: 1}, "P=x; P=y echo stage | cat; echo [$P]", "", "", nil)
	if got != "stage\n[x]\n" {
		t.Errorf("pipeline prefix: %q", got)
	}
	// Lone assignments still persist (not prefixes).
	got = runScript(t, Options{Width: 1}, "KEEP=yes; echo [$KEEP]", "", "", nil)
	if got != "[yes]\n" {
		t.Errorf("lone assignment: %q", got)
	}
}

func TestCompoundPipelineStreamsAndPropagates(t *testing.T) {
	// Compound stages (subshells in a pipeline) stream concurrently.
	got := runScript(t, Options{Width: 1}, "( echo a; echo b ) | wc -l", "", "", nil)
	if strings.TrimSpace(got) != "2" {
		t.Errorf("compound pipeline = %q", got)
	}
	// Exit status comes from the last stage.
	_, code, err := runScriptCode(t, Options{Width: 1}, "( echo x ) | grep nomatch", "", "", nil)
	if err != nil || code != 1 {
		t.Errorf("compound status: code=%d err=%v", code, err)
	}
	// Early-exit downstream terminates an unbounded upstream: with
	// buffered staging this would run the upstream to completion (or
	// forever); with pipes it finishes promptly.
	type result struct {
		out  string
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		out, code, err := runScriptCode(t, Options{Width: 1},
			"( x=0; while true; do echo line $x; done ) | head -n 3", "", "", nil)
		done <- result{out, code, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("early-exit pipeline failed: %v", r.err)
		}
		if strings.Count(r.out, "\n") != 3 {
			t.Errorf("early exit output = %q", r.out)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("compound pipeline with early-exit consumer did not terminate")
	}
	// Compound stage negation still applies.
	_, code, err = runScriptCode(t, Options{Width: 1}, "! ( echo x ) | grep nomatch", "", "", nil)
	if err != nil || code != 0 {
		t.Errorf("negated compound: code=%d err=%v", code, err)
	}
}

func TestNegatedCompoundKeepsEnvironment(t *testing.T) {
	// `!` is not a subshell: assignments inside a lone negated brace
	// group persist (POSIX), even though the parser routes it through
	// the compound-pipeline path.
	got := runScript(t, Options{Width: 1}, "! { X=1; }; echo [$X]", "", "", nil)
	if got != "[1]\n" {
		t.Errorf("negated brace group dropped assignment: %q", got)
	}
}

func TestBackgroundJobEnvSnapshotRace(t *testing.T) {
	// A background pipeline snapshots the environment while the
	// foreground installs and restores command-scoped prefixes: must
	// not corrupt the shared Env (run under -race).
	src := `for i in 1 2 3 4 5 6 7 8; do
 grep quick a.txt | wc -l &
 X=$i grep lazy a.txt | wc -l
done
wait`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte(corpus(200)), 0o644); err != nil {
		t.Fatal(err)
	}
	// Background and foreground regions write stdout concurrently (as
	// in a real shell), so the capture buffer must be synchronized.
	out := &syncWriter{}
	c := NewCompiler(Options{Width: 2, Split: true})
	in := NewInterp(c, dir, nil, runtime.StdIO{Stdin: strings.NewReader(""), Stdout: out, Stderr: os.Stderr})
	if _, err := in.RunScript(context.Background(), src); err != nil {
		t.Fatal(err)
	}
}

// syncWriter is a mutex-guarded buffer for tests whose scripts write
// stdout from concurrent jobs.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestBackgroundJobExitPropagation(t *testing.T) {
	// `wait` surfaces the background job's exit code.
	_, code, err := runScriptCode(t, Options{Width: 1}, "grep nomatch </dev/null & wait", "", "", nil)
	if err != nil || code != 1 {
		t.Errorf("wait after failing job: code=%d err=%v, want 1/nil", code, err)
	}
	_, code, err = runScriptCode(t, Options{Width: 1}, "true & wait", "", "", nil)
	if err != nil || code != 0 {
		t.Errorf("wait after succeeding job: code=%d err=%v", code, err)
	}
	// A background job hitting a real error propagates it at script end.
	_, _, err = runScriptCode(t, Options{Width: 1}, "definitely-not-a-command &", "", "", nil)
	if err == nil {
		t.Error("background error swallowed")
	}
}

func fixedLoopScript(iters int) string {
	return fmt.Sprintf("for i in $(seq %d); do cut -d ' ' -f1 a.txt | grep o | sort | uniq -c | head -n 3; done", iters)
}
