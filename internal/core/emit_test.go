package core

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func planFor(t *testing.T, opts Options, src string) *Plan {
	t.Helper()
	c := NewCompiler(opts)
	p, err := c.Plan(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func emitted(t *testing.T, opts Options, src string) string {
	t.Helper()
	var b bytes.Buffer
	if err := planFor(t, opts, src).Emit(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPlanLiftsStaticRegions(t *testing.T) {
	p := planFor(t, DefaultOptions(4), "cat f.txt | grep x | sort")
	if len(p.Items) != 1 || p.Items[0].Graph == nil {
		t.Fatalf("static pipeline not lifted: %+v", p.Items)
	}
	if n := len(p.Items[0].Graph.Nodes); n < 10 {
		t.Errorf("region not parallelized: %d nodes", n)
	}
}

func TestPlanKeepsDynamicRegionsVerbatim(t *testing.T) {
	p := planFor(t, DefaultOptions(4), "grep $pattern f.txt")
	if len(p.Items) != 1 || p.Items[0].Graph != nil {
		t.Fatalf("dynamic region must stay verbatim: %+v", p.Items)
	}
	if !strings.Contains(p.Items[0].Verbatim, "$pattern") {
		t.Errorf("verbatim lost the variable: %q", p.Items[0].Verbatim)
	}
}

func TestPlanConstantPropagation(t *testing.T) {
	// A static assignment makes downstream uses static.
	p := planFor(t, DefaultOptions(4), "f=data.txt; grep x $f | sort")
	var graphs int
	for _, it := range p.Items {
		if it.Graph != nil {
			graphs++
		}
	}
	if graphs != 1 {
		t.Errorf("constant propagation failed: %d lifted regions", graphs)
	}
}

func TestPlanKeepsCompoundsVerbatim(t *testing.T) {
	p := planFor(t, DefaultOptions(4), "for i in 1 2; do echo $i; done")
	if len(p.Items) != 1 || p.Items[0].Graph != nil {
		t.Fatalf("compound should be verbatim: %+v", p.Items)
	}
}

func TestEmitStructure(t *testing.T) {
	out := emitted(t, DefaultOptions(2), "cat in.txt | grep -v x | sort | head -n 3")
	for _, frag := range []string{
		"#!/bin/sh",
		"mktemp -d",
		"mkfifo",
		"sort -m", // the sort aggregator
		"wait $pash_out",
		"kill -PIPE",
		"rm -rf",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("emitted script missing %q:\n%s", frag, out)
		}
	}
}

func TestEmitQuoting(t *testing.T) {
	out := emitted(t, Options{Width: 1}, `grep 'a b$c' f.txt`)
	if !strings.Contains(out, `'a b$c'`) {
		t.Errorf("special characters not quoted:\n%s", out)
	}
}

func TestEmitSplitUsesPrims(t *testing.T) {
	out := emitted(t, DefaultOptions(4), "grep x < big.txt | tr a-z A-Z")
	if !strings.Contains(out, `"$PASH_PRIMS" split`) {
		t.Errorf("split not routed through pash-prims:\n%s", out)
	}
	if !strings.Contains(out, `"$PASH_PRIMS" eager`) {
		t.Errorf("eager relays not emitted:\n%s", out)
	}
}

// TestEmittedScriptRunsUnderSh executes a generated script with the
// system shell and real coreutils, checking output equivalence against
// the in-process run. Skipped when sh or the commands are unavailable.
func TestEmittedScriptRunsUnderSh(t *testing.T) {
	shPath, err := exec.LookPath("sh")
	if err != nil {
		t.Skip("sh not available")
	}
	for _, cmd := range []string{"cat", "grep", "sort", "tr", "mkfifo", "head"} {
		if _, err := exec.LookPath(cmd); err != nil {
			t.Skipf("%s not available", cmd)
		}
	}
	dir := t.TempDir()
	input := "delta\nalpha\ncharlie\nbravo\nalpha\n"
	if err := os.WriteFile(filepath.Join(dir, "in.txt"), []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build pash-prims into the temp dir.
	prims := filepath.Join(dir, "pash-prims")
	build := exec.Command("go", "build", "-o", prims, "repro/cmd/pash-prims")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build pash-prims: %v\n%s", err, out)
	}

	script := "cat in.txt | grep -v x | sort | head -n 3"
	var gen bytes.Buffer
	if err := planFor(t, DefaultOptions(2), script).Emit(&gen); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gen.sh"), gen.Bytes(), 0o755); err != nil {
		t.Fatal(err)
	}
	sh := exec.Command(shPath, "gen.sh")
	sh.Dir = dir
	sh.Env = append(os.Environ(), "PASH_PRIMS="+prims, "LC_ALL=C")
	out, err := sh.CombinedOutput()
	if err != nil {
		t.Fatalf("generated script failed: %v\n%s\nscript:\n%s", err, out, gen.String())
	}
	want := "alpha\nalpha\nbravo\n"
	if string(out) != want {
		t.Errorf("generated script output = %q, want %q", out, want)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}
