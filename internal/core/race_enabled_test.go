//go:build race

package core

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation distorts perf-assertion ratios.
const raceEnabled = true
