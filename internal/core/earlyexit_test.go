package core

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/runtime"
)

// meteredStream serves a bounded synthetic line stream and counts how
// much of it was actually read.
type meteredStream struct {
	line   []byte
	max    int64
	served int64
}

func (m *meteredStream) Read(p []byte) (int, error) {
	if m.served >= m.max {
		return 0, io.EOF
	}
	n := 0
	for n+len(m.line) <= len(p) && m.served < m.max {
		n += copy(p[n:], m.line)
		m.served += int64(len(m.line))
	}
	if n == 0 {
		n = copy(p, m.line)
		m.served += int64(n)
	}
	return n, nil
}

// TestHeadEarlyExitThroughInterpreter is the end-to-end early-exit
// regression: a prefix-taker (head -n) at the end of a parallelized
// fused chain must stop the upstream splitter promptly. Before the
// StopsEarly fix, t2 planted a barrier split in front of head, which
// drained the entire stream the maps would never read.
func TestHeadEarlyExitThroughInterpreter(t *testing.T) {
	const total = 256 << 20
	cases := []struct {
		name  string
		opts  Options
		slack int64
	}{
		// Sequential: head stops the chain after two lines.
		{"width1", Options{Width: 1}, 8 << 20},
		// Bounded pipes: run-ahead is capped by pipe capacities, so the
		// bound is tight.
		{"width8-lazy", Options{Width: 8, Split: true}, 32 << 20},
		// Unbounded eager buffers never backpressure the splitter, so
		// run-ahead is scheduling-dependent; before the StopsEarly fix
		// the barrier split deterministically drained all 256MB.
		{"width8-eager", DefaultOptions(8), total / 2},
	}
	for _, tc := range cases {
		src := &meteredStream{line: []byte("steady stream of words\n"), max: total}
		var out strings.Builder
		c := NewCompiler(tc.opts)
		interp := NewInterp(c, "", nil, runtime.StdIO{Stdin: src, Stdout: &out})
		code, err := interp.RunScript(context.Background(), `tr a-z A-Z | grep -v QQQ | head -n 2`)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if code != 0 {
			t.Fatalf("%s: exit %d", tc.name, code)
		}
		want := "STEADY STREAM OF WORDS\nSTEADY STREAM OF WORDS\n"
		if out.String() != want {
			t.Fatalf("%s: output %q", tc.name, out.String())
		}
		if src.served > tc.slack {
			t.Fatalf("%s: early exit failed: %d bytes consumed (>%d) of %d",
				tc.name, src.served, tc.slack, int64(total))
		}
		t.Logf("%s: consumed %.1fMB of %dMB", tc.name, float64(src.served)/(1<<20), total>>20)
	}
}
