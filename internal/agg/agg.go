// Package agg implements PaSh's aggregator library (§5.2): for each
// parallelizable pure command it supplies a (map, aggregate) pair
// satisfying f(x·x') = agg(m(x)·m(x'), s), plus the aggregate command
// implementations themselves. The aggregators iterate over any number of
// input streams and apply pure fixups at stream boundaries, exactly as
// the paper describes.
package agg

import (
	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/dfg"
)

// Resolve returns the (map, aggregate) pair for a command invocation, or
// false when no sound aggregator is known — in which case the node stays
// sequential (the conservative default). flagArgs are the invocation's
// non-stream arguments (flags and config operands).
//
// Aggregators whose output can be re-aggregated — agg(agg(a)·agg(b)) ==
// agg(a·b) — are marked Associative, which licenses the transformation
// to arrange them into fan-in-k trees at high widths instead of one
// flat n-ary merge (see dfg.Options.AggFanIn). Every aggregator here is
// associative except pash-agg-bigrams, whose output drops the boundary
// markers its own input format requires.
func Resolve(name string, flagArgs []string, inv *annot.Invocation) (*dfg.AggSpec, bool) {
	switch name {
	case "sort":
		// sort -m already expects sorted runs; -o/-c/-R were demoted by
		// annotations before we get here.
		if inv.Opts.Has("-m") || inv.Opts.Has("-c") || inv.Opts.Has("-o") {
			return nil, false
		}
		// Merging sorted runs is associative, and stability (ties in
		// source order) composes level by level.
		return &dfg.AggSpec{
			MapName: "sort", MapArgs: flagArgs,
			AggName: "sort", AggArgs: append([]string{"-m"}, flagArgs...),
			Associative: true,
		}, true
	case "uniq":
		// Boundary merging is implemented for plain uniq and uniq -c.
		for _, o := range inv.Opts.Options() {
			switch o {
			case "-c":
			default:
				return nil, false
			}
		}
		// The aggregate's output is itself valid uniq (-c) output, so
		// partial merges re-aggregate.
		return &dfg.AggSpec{
			MapName: "uniq", MapArgs: flagArgs,
			AggName: "pash-agg-uniq", AggArgs: flagArgs,
			Associative: true,
		}, true
	case "wc":
		// Column sums of column sums.
		return &dfg.AggSpec{
			MapName: "wc", MapArgs: flagArgs,
			AggName: "pash-agg-wc", AggArgs: flagArgs,
			Associative: true,
		}, true
	case "grep":
		// Only the counting form aggregates: sum of per-chunk counts.
		// Positional flags (-n, -m) have no sound chunk-local meaning.
		if !inv.Opts.Has("-c") || inv.Opts.Has("-n") || inv.Opts.Has("-m") ||
			inv.Opts.Has("-l") || inv.Opts.Has("-q") {
			return nil, false
		}
		return &dfg.AggSpec{
			MapName: "grep", MapArgs: flagArgs,
			AggName: "pash-agg-sum", AggArgs: nil,
			Associative: true,
		}, true
	case "head":
		n, ok := inv.Opts.Value("-n")
		if inv.Opts.Has("-c") || (ok && len(n) > 0 && n[0] == '+') {
			return nil, false
		}
		// head_K(x·x') == head_K(head_K(x)·head_K(x')). The aggregate is
		// a dedicated primitive rather than head itself because real
		// multi-file head prints "==> f <==" headers. Prefix-taking is
		// associative; StopsEarly keeps t2 from planting a draining
		// barrier split in front of a command that reads K lines.
		return &dfg.AggSpec{
			MapName: "head", MapArgs: flagArgs,
			AggName: "pash-agg-head", AggArgs: flagArgs,
			Associative: true, StopsEarly: true,
		}, true
	case "tail":
		n, ok := inv.Opts.Value("-n")
		if inv.Opts.Has("-c") || (ok && len(n) > 0 && n[0] == '+') {
			return nil, false
		}
		// tail_K(x·x') == tail_K(tail_K(x)·tail_K(x')).
		return &dfg.AggSpec{
			MapName: "tail", MapArgs: flagArgs,
			AggName: "pash-agg-tail", AggArgs: flagArgs,
			Associative: true,
		}, true
	case "tac":
		if len(flagArgs) > 0 {
			return nil, false
		}
		// tac(x·x') == tac(x')·tac(x): concatenate map outputs in
		// reverse stream order (§5.2: tac "consumes stream descriptors
		// in reverse order"). Reversed concatenation of reversed
		// concatenations composes, so trees are sound.
		return &dfg.AggSpec{
			MapName: "tac", MapArgs: nil,
			AggName: "pash-agg-tac", AggArgs: nil,
			Associative: true,
		}, true
	case "bigrams-aux":
		// The §3.2 custom-aggregator story: map emits boundary markers,
		// the aggregate stitches cross-chunk bigrams back in. Its output
		// has the markers stripped, so it cannot feed another aggregate:
		// NOT associative — keep the flat n-ary stage.
		if len(flagArgs) > 0 {
			return nil, false
		}
		return &dfg.AggSpec{
			MapName: "bigrams-aux", MapArgs: []string{"--marked"},
			AggName: "pash-agg-bigrams", AggArgs: nil,
		}, true
	}
	return nil, false
}

// Install registers the aggregate command implementations into a command
// registry. They live on the PATH like any other command (§2.3), so both
// the in-process runtime and emitted scripts can invoke them.
func Install(reg *commands.Registry) {
	reg.Register("pash-agg-uniq", aggUniq)
	reg.Register("pash-agg-wc", aggWc)
	reg.Register("pash-agg-sum", aggSum)
	reg.Register("pash-agg-tac", aggTac)
	reg.Register("pash-agg-bigrams", aggBigrams)
	reg.Register("pash-agg-head", aggHead)
	reg.Register("pash-agg-tail", aggTail)
}
