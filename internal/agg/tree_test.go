package agg

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/annot"
	"repro/internal/commands"
)

// memFS serves named in-memory streams to aggregate commands, playing
// the role the runtime's overlay filesystem plays for edge streams.
type memFS struct {
	files map[string]string
}

func (m memFS) Open(path string) (io.ReadCloser, error) {
	s, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memFS: no stream %q", path)
	}
	return io.NopCloser(strings.NewReader(s)), nil
}

func (m memFS) Create(path string) (io.WriteCloser, error) {
	return nil, fmt.Errorf("memFS: read-only")
}

func (m memFS) Append(path string) (io.WriteCloser, error) {
	return nil, fmt.Errorf("memFS: read-only")
}

func treeReg() *commands.Registry {
	r := commands.NewStd()
	Install(r)
	return r
}

// runOver runs a command with the given operand streams.
func runOver(t *testing.T, reg *commands.Registry, name string, flagArgs []string, inputs []string) string {
	t.Helper()
	fs := memFS{files: map[string]string{}}
	args := append([]string{}, flagArgs...)
	for i, in := range inputs {
		op := fmt.Sprintf("s%d", i)
		fs.files[op] = in
		args = append(args, op)
	}
	var out bytes.Buffer
	err := reg.Run(name, &commands.Context{
		Args:   args,
		Stdin:  strings.NewReader(""),
		Stdout: &out,
		Stderr: io.Discard,
		FS:     fs,
	})
	if err != nil {
		if _, ok := err.(*commands.ExitError); !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
	}
	return out.String()
}

// reduceRandomTree aggregates the partials through a random-shape,
// order-preserving tree: repeatedly pick a contiguous group of 2..4
// partials and replace it with its aggregate, until one remains.
func reduceRandomTree(t *testing.T, reg *commands.Registry, aggName string, aggArgs []string, partials []string, rng *rand.Rand) string {
	t.Helper()
	items := append([]string{}, partials...)
	for len(items) > 1 {
		span := 2 + rng.Intn(3)
		if span > len(items) {
			span = len(items)
		}
		i := rng.Intn(len(items) - span + 1)
		combined := runOver(t, reg, aggName, aggArgs, items[i:i+span])
		items = append(items[:i], append([]string{combined}, items[i+span:]...)...)
	}
	return items[0]
}

// aggTreeCase is one (command, map, aggregate) triple under test.
type aggTreeCase struct {
	name    string
	cmdArgs []string // the original command (sequential reference + map)
	aggName string
	aggArgs []string
}

var aggTreeCases = []aggTreeCase{
	{"sort", nil, "sort", []string{"-m"}},
	{"sort", []string{"-rn"}, "sort", []string{"-m", "-rn"}},
	{"sort", []string{"-u"}, "sort", []string{"-m", "-u"}},
	{"wc", nil, "pash-agg-wc", nil},
	{"wc", []string{"-l"}, "pash-agg-wc", []string{"-l"}},
	{"wc", []string{"-lw"}, "pash-agg-wc", []string{"-lw"}},
	{"uniq", []string{"-c"}, "pash-agg-uniq", []string{"-c"}},
	{"uniq", nil, "pash-agg-uniq", nil},
	{"tac", nil, "pash-agg-tac", nil},
}

func randomCorpus(rng *rand.Rand, n int) string {
	words := []string{"ant", "bee", "cat", "dog", "ant", "cat", "7", "42", "-3", "0"}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(3) == 0 {
			sb.WriteByte(' ')
			sb.WriteString(words[rng.Intn(len(words))])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// splitChunks cuts the input into k contiguous line-aligned chunks —
// what the barrier split hands to pure-command maps.
func splitChunks(input string, k int) []string {
	lines := strings.SplitAfter(input, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	per := (len(lines) + k - 1) / k
	if per == 0 {
		per = 1
	}
	var out []string
	for lo := 0; lo < len(lines); lo += per {
		hi := lo + per
		if hi > len(lines) {
			hi = len(lines)
		}
		out = append(out, strings.Join(lines[lo:hi], ""))
	}
	for len(out) < k {
		out = append(out, "")
	}
	return out
}

// TestAggTreeAssociativity is the property test behind the fan-in-k
// aggregation trees: for every associative aggregator, aggregating the
// map partials through a random tree shape produces the same bytes as
// the flat n-ary aggregate, which in turn equals the sequential
// command. 40 random (corpus, width, shape) triples per aggregator.
func TestAggTreeAssociativity(t *testing.T) {
	reg := treeReg()
	rng := rand.New(rand.NewSource(17))
	for _, tc := range aggTreeCases {
		for trial := 0; trial < 40; trial++ {
			corpus := randomCorpus(rng, rng.Intn(400))
			width := 2 + rng.Intn(15)
			chunks := splitChunks(corpus, width)
			partials := make([]string, len(chunks))
			for i, ch := range chunks {
				partials[i] = runOverStdin(t, reg, tc.name, tc.cmdArgs, ch)
			}
			flat := runOver(t, reg, tc.aggName, tc.aggArgs, partials)
			tree := reduceRandomTree(t, reg, tc.aggName, tc.aggArgs, partials, rng)
			if flat != tree {
				t.Fatalf("%s/%s trial %d width %d: tree diverged from flat\nflat: %q\ntree: %q",
					tc.name, tc.aggName, trial, width, flat, tree)
			}
			seq := runOverStdin(t, reg, tc.name, tc.cmdArgs, corpus)
			if flat != seq {
				t.Fatalf("%s/%s trial %d width %d: aggregate diverged from sequential\nseq:  %q\nflat: %q",
					tc.name, tc.aggName, trial, width, seq, flat)
			}
		}
	}
}

func runOverStdin(t *testing.T, reg *commands.Registry, name string, args []string, input string) string {
	t.Helper()
	var out bytes.Buffer
	err := reg.Run(name, &commands.Context{
		Args:   args,
		Stdin:  strings.NewReader(input),
		Stdout: &out,
		Stderr: io.Discard,
	})
	if err != nil {
		if _, ok := err.(*commands.ExitError); !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
	}
	return out.String()
}

// TestResolveAssociativity pins which aggregators may form trees.
func TestResolveAssociativity(t *testing.T) {
	// The bigram aggregate strips its own input markers: must stay flat.
	// Everything else resolved here is associative.
	check := func(name string, args []string, want bool) {
		t.Helper()
		inv := annot.StdRegistry().Classify(name, args)
		spec, ok := Resolve(name, args, inv)
		if !ok {
			t.Fatalf("Resolve(%s %v) failed", name, args)
		}
		if spec.Associative != want {
			t.Fatalf("Resolve(%s %v).Associative = %v, want %v", name, args, spec.Associative, want)
		}
	}
	check("sort", nil, true)
	check("uniq", []string{"-c"}, true)
	check("wc", []string{"-l"}, true)
	check("tac", nil, true)
	check("bigrams-aux", nil, false)
}
