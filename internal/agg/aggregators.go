package agg

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/commands"
)

// aggUniq merges the outputs of parallel uniq instances. Within each
// chunk lines are already deduplicated; only runs that straddle chunk
// boundaries need fixing. With -c the straddling runs' counts are added.
func aggUniq(ctx *commands.Context) error {
	counting := false
	var operands []string
	for _, a := range ctx.Args {
		switch {
		case a == "-c":
			counting = true
		case strings.HasPrefix(a, "-") && a != "-":
			return ctx.Errorf("unsupported flag %q", a)
		default:
			operands = append(operands, a)
		}
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	lw := commands.NewLineWriter(ctx.Stdout)
	defer lw.Flush()

	type rec struct {
		count int64
		line  []byte
	}
	parse := func(raw []byte) (rec, error) {
		if !counting {
			return rec{count: 1, line: append([]byte(nil), raw...)}, nil
		}
		// uniq -c format: %7d SPACE line.
		trimmed := bytes.TrimLeft(raw, " ")
		sp := bytes.IndexByte(trimmed, ' ')
		if sp < 0 {
			return rec{}, fmt.Errorf("pash-agg-uniq: malformed count line %q", raw)
		}
		n, err := strconv.ParseInt(string(trimmed[:sp]), 10, 64)
		if err != nil {
			return rec{}, fmt.Errorf("pash-agg-uniq: bad count in %q", raw)
		}
		return rec{count: n, line: append([]byte(nil), trimmed[sp+1:]...)}, nil
	}
	emit := func(r rec) error {
		if r.line == nil {
			return nil
		}
		if counting {
			return lw.WriteString(fmt.Sprintf("%7d %s\n", r.count, r.line))
		}
		return lw.WriteLine(r.line)
	}

	pending := rec{}
	havePending := false
	for _, r := range readers {
		it := commands.NewLineIter(r)
		firstOfChunk := true
		for {
			raw, ok := it.Next()
			if !ok {
				break
			}
			cur, err := parse(raw)
			if err != nil {
				return err
			}
			if havePending && firstOfChunk && bytes.Equal(pending.line, cur.line) {
				// Run straddles the boundary: merge into pending.
				pending.count += cur.count
				firstOfChunk = false
				continue
			}
			if havePending {
				if err := emit(pending); err != nil {
					return err
				}
			}
			pending = cur
			havePending = true
			firstOfChunk = false
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	if havePending {
		if err := emit(pending); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// aggWc sums the numeric columns of the per-chunk wc outputs, preserving
// wc's formatting (bare number for a single column, %7d columns
// otherwise). It handles any of wc's column subsets (wc -lw, -lwc, ...).
func aggWc(ctx *commands.Context) error {
	var operands []string
	for _, a := range ctx.Args {
		if strings.HasPrefix(a, "-") && a != "-" {
			// Column-selection flags only affect formatting of the
			// inputs, which we infer from the data itself.
			continue
		}
		operands = append(operands, a)
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	var sums []int64
	for _, r := range readers {
		err := commands.EachLine(r, func(line []byte) error {
			fields := bytes.Fields(line)
			for i, f := range fields {
				n, err := strconv.ParseInt(string(f), 10, 64)
				if err != nil {
					return fmt.Errorf("pash-agg-wc: non-numeric column %q", f)
				}
				if i >= len(sums) {
					sums = append(sums, 0)
				}
				sums[i] += n
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	lw := commands.NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	if len(sums) == 1 {
		if err := lw.WriteString(strconv.FormatInt(sums[0], 10) + "\n"); err != nil {
			return err
		}
		return lw.Flush()
	}
	var sb strings.Builder
	for i, s := range sums {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%7d", s)
	}
	if err := lw.WriteString(sb.String() + "\n"); err != nil {
		return err
	}
	return lw.Flush()
}

// aggSum adds one integer per input line across all inputs (grep -c).
func aggSum(ctx *commands.Context) error {
	var operands []string
	for _, a := range ctx.Args {
		if strings.HasPrefix(a, "-") && a != "-" {
			return ctx.Errorf("unsupported flag %q", a)
		}
		operands = append(operands, a)
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	var total int64
	for _, r := range readers {
		err := commands.EachLine(r, func(line []byte) error {
			n, err := strconv.ParseInt(strings.TrimSpace(string(line)), 10, 64)
			if err != nil {
				return fmt.Errorf("pash-agg-sum: non-numeric line %q", line)
			}
			total += n
			return nil
		})
		if err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(ctx.Stdout, "%d\n", total)
	return err
}

// aggTac concatenates its inputs in reverse order: since each map
// instance already reversed its chunk, reading the chunks back-to-front
// reproduces tac of the whole stream.
func aggTac(ctx *commands.Context) error {
	var operands []string
	for _, a := range ctx.Args {
		if strings.HasPrefix(a, "-") && a != "-" {
			return ctx.Errorf("unsupported flag %q", a)
		}
		operands = append(operands, a)
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	// Inputs after the first may still be producing; buffering the later
	// ones while draining in reverse order needs the tail inputs
	// materialized first. Eager edges make this cheap; we simply read in
	// reverse index order, relaying whole blocks by ownership transfer
	// when the edges allow it.
	for i := len(readers) - 1; i >= 0; i-- {
		if _, err := commands.CopyChunks(ctx.Stdout, readers[i]); err != nil {
			return err
		}
	}
	return nil
}

// aggHead emits the first K lines (-n K, default 10) of its inputs'
// concatenation — multi-file head without the "==> f <==" headers.
func aggHead(ctx *commands.Context) error {
	n, operands, err := parseHeadTailAgg(ctx)
	if err != nil {
		return err
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	lw := commands.NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	count := int64(0)
	stop := io.EOF
	err = commands.EachLineReaders(readers, func(line []byte) error {
		if count >= n {
			return stop
		}
		count++
		return lw.WriteLine(line)
	})
	if err != nil && err != stop {
		return err
	}
	return lw.Flush()
}

// aggTail emits the last K lines (-n K) of its inputs' concatenation.
func aggTail(ctx *commands.Context) error {
	n, operands, err := parseHeadTailAgg(ctx)
	if err != nil {
		return err
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	if n <= 0 {
		return nil
	}
	ring := make([][]byte, n)
	total := int64(0)
	err = commands.EachLineReaders(readers, func(line []byte) error {
		slot := total % n
		ring[slot] = append(ring[slot][:0], line...)
		total++
		return nil
	})
	if err != nil {
		return err
	}
	lw := commands.NewLineWriter(ctx.Stdout)
	defer lw.Flush()
	start := int64(0)
	if total > n {
		start = total - n
	}
	for i := start; i < total; i++ {
		if err := lw.WriteLine(ring[i%n]); err != nil {
			return err
		}
	}
	return lw.Flush()
}

func parseHeadTailAgg(ctx *commands.Context) (int64, []string, error) {
	n := int64(10)
	var operands []string
	args := ctx.Args
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "-n"):
			v := a[2:]
			if v == "" {
				i++
				if i >= len(args) {
					return 0, nil, ctx.Errorf("-n requires an argument")
				}
				v = args[i]
			}
			parsed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, nil, ctx.Errorf("invalid count %q", v)
			}
			n = parsed
		case a == "-":
			operands = append(operands, a)
		case strings.HasPrefix(a, "-"):
			return 0, nil, ctx.Errorf("unsupported flag %q", a)
		default:
			operands = append(operands, a)
		}
	}
	return n, operands, nil
}

// Marker prefixes for the bigram map/aggregate pair. The map emits its
// chunk's first and last words out of band; the aggregate stitches the
// missing cross-boundary bigrams back in.
const (
	bigramFirstMark = "\x01F "
	bigramLastMark  = "\x01L "
)

// aggBigrams stitches marked per-chunk bigram streams (§3.2's custom
// map/aggregate invariants, instantiated for stream shifting).
func aggBigrams(ctx *commands.Context) error {
	var operands []string
	for _, a := range ctx.Args {
		if strings.HasPrefix(a, "-") && a != "-" {
			return ctx.Errorf("unsupported flag %q", a)
		}
		operands = append(operands, a)
	}
	readers, cleanup, err := ctx.OpenInputs(operands)
	if err != nil {
		return err
	}
	defer cleanup()
	lw := commands.NewLineWriter(ctx.Stdout)
	defer lw.Flush()

	pendingLast := ""
	havePendingLast := false
	for _, r := range readers {
		it := commands.NewLineIter(r)
		for {
			raw, ok := it.Next()
			if !ok {
				break
			}
			line := string(raw)
			switch {
			case strings.HasPrefix(line, bigramFirstMark):
				first := line[len(bigramFirstMark):]
				if havePendingLast {
					if err := lw.WriteLine([]byte(pendingLast + " " + first)); err != nil {
						return err
					}
				}
			case strings.HasPrefix(line, bigramLastMark):
				pendingLast = line[len(bigramLastMark):]
				havePendingLast = true
			default:
				if err := lw.WriteLine(raw); err != nil {
					return err
				}
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return lw.Flush()
}
