package agg

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/annot"
	"repro/internal/commands"
)

func reg() *commands.Registry {
	r := commands.NewStd()
	Install(r)
	return r
}

// runCmd executes a command with the given file operands in dir.
func runCmd(t *testing.T, r *commands.Registry, dir, name string, args []string, stdin string) string {
	t.Helper()
	var out bytes.Buffer
	ctx := &commands.Context{
		Args:   args,
		Stdin:  strings.NewReader(stdin),
		Stdout: &out,
		FS:     commands.OSFS{Dir: dir},
	}
	if err := r.Run(name, ctx); err != nil {
		if _, ok := err.(*commands.ExitError); !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
	}
	return out.String()
}

// checkPair verifies the §4.2 equation f(x·x') = agg(m(x)·m(x')) for a
// resolved pair across random 3-way chunkings.
func checkPair(t *testing.T, name string, argv []string) {
	t.Helper()
	r := reg()
	stdReg := annot.StdRegistry()
	inv := stdReg.Classify(name, argv)
	spec, ok := Resolve(name, argv, inv)
	if !ok {
		t.Fatalf("no aggregator for %s %v", name, argv)
	}
	words := []string{"apple", "apple", "banana", "12", "7", "7", "42", "zebra", "kiwi", "kiwi", "kiwi"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lines []string
		for i := 0; i < rng.Intn(40); i++ {
			lines = append(lines, words[rng.Intn(len(words))])
		}
		input := strings.Join(lines, "\n")
		if len(lines) > 0 {
			input += "\n"
		}
		// Whole-input reference.
		whole := runCmd(t, r, "", name, argv, input)

		// Three chunks, maps, then aggregate over files.
		c1 := rng.Intn(len(lines) + 1)
		c2 := c1 + rng.Intn(len(lines)-c1+1)
		chunks := []string{
			joinLines(lines[:c1]), joinLines(lines[c1:c2]), joinLines(lines[c2:]),
		}
		dir := t.TempDir()
		var aggArgs []string
		aggArgs = append(aggArgs, spec.AggArgs...)
		for i, chunk := range chunks {
			mapOut := runCmd(t, r, "", spec.MapName, spec.MapArgs, chunk)
			fn := filepath.Join(dir, "m"+string(rune('0'+i)))
			if err := os.WriteFile(fn, []byte(mapOut), 0o644); err != nil {
				t.Fatal(err)
			}
			aggArgs = append(aggArgs, fn)
		}
		got := runCmd(t, r, "", spec.AggName, aggArgs, "")
		if got != whole {
			t.Logf("%s %v: input=%q whole=%q agg=%q", name, argv, input, whole, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("%s %v: map/aggregate equation violated: %v", name, argv, err)
	}
}

func joinLines(ls []string) string {
	if len(ls) == 0 {
		return ""
	}
	return strings.Join(ls, "\n") + "\n"
}

func TestMapAggregatePairs(t *testing.T) {
	cases := []struct {
		name string
		argv []string
	}{
		{"sort", nil},
		{"sort", []string{"-rn"}},
		{"sort", []string{"-u"}},
		{"uniq", nil},
		{"uniq", []string{"-c"}},
		{"wc", nil},
		{"wc", []string{"-l"}},
		{"wc", []string{"-lw"}},
		{"grep", []string{"-c", "a"}},
		{"head", []string{"-n", "3"}},
		{"tail", []string{"-n", "3"}},
		{"tac", nil},
		{"bigrams-aux", nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name+"_"+strings.Join(c.argv, "_"), func(t *testing.T) {
			checkPair(t, c.name, c.argv)
		})
	}
}

func TestResolveRefusals(t *testing.T) {
	stdReg := annot.StdRegistry()
	refuse := []struct {
		name string
		argv []string
	}{
		{"sort", []string{"-m"}},       // merge input is already sorted runs
		{"grep", []string{"-n", "x"}},  // global line numbers
		{"grep", []string{"x"}},        // plain grep is S, not aggregated
		{"head", []string{"-n", "+2"}}, // positional
		{"tail", []string{"-n", "+2"}}, // positional
		{"head", []string{"-c", "10"}}, // byte counts don't chunk on lines
		{"uniq", []string{"-d"}},       // boundary semantics unimplemented
		{"uniq", []string{"-f", "1"}},  // key-skipping unimplemented
		{"awk", []string{"{print}"}},   // no aggregator for awk
	}
	for _, c := range refuse {
		inv := stdReg.Classify(c.name, c.argv)
		if _, ok := Resolve(c.name, c.argv, inv); ok {
			t.Errorf("Resolve(%s %v) succeeded, want refusal", c.name, c.argv)
		}
	}
}

func TestAggUniqBoundaryMerge(t *testing.T) {
	r := reg()
	dir := t.TempDir()
	// Chunk outputs of uniq -c with a straddling run of "x".
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("      2 x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b"), []byte("      3 x\n      1 y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := runCmd(t, r, dir, "pash-agg-uniq", []string{"-c", "a", "b"}, "")
	if got != "      5 x\n      1 y\n" {
		t.Errorf("boundary merge = %q", got)
	}
}

func TestAggWcFormats(t *testing.T) {
	r := reg()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("      2      4     10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b"), []byte("      1      2      5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := runCmd(t, r, dir, "pash-agg-wc", []string{"a", "b"}, "")
	// GNU wc joins its 7-wide columns with one space.
	if got != "      3       6      15\n" {
		t.Errorf("wc agg = %q", got)
	}
}

func TestAggSum(t *testing.T) {
	r := reg()
	dir := t.TempDir()
	for i, content := range []string{"3\n", "4\n"} {
		if err := os.WriteFile(filepath.Join(dir, string(rune('a'+i))), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := runCmd(t, r, dir, "pash-agg-sum", []string{"a", "b"}, ""); got != "7\n" {
		t.Errorf("sum agg = %q", got)
	}
}
