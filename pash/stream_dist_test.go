package pash

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dist"
)

// startStreamWorker launches a dist worker over a unix socket for the
// streaming chaos test.
func startStreamWorker(t *testing.T, dir, name string) string {
	t.Helper()
	sock := filepath.Join(dir, name)
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: dist.NewWorker(nil, dir).Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "unix:" + sock
}

// TestStreamDistWorkerKillMidStream kills a worker mid-stream and
// asserts the distributed plane heals under the streaming job: the
// pool redispatches the dead worker's shards to the survivor, every
// window still completes, and the stream's output is byte-identical to
// an unfaulted run. This is the distributed leg of checkpointed
// failover — the job itself never restarts, so windows (and therefore
// checkpoints) are never replayed.
func TestStreamDistWorkerKillMidStream(t *testing.T) {
	dir := t.TempDir()
	w1 := startStreamWorker(t, dir, "w1.sock")
	w2 := startStreamWorker(t, dir, "w2.sock")

	var data bytes.Buffer
	for i := 0; i < 12000; i++ {
		fmt.Fprintf(&data, "the quick zebra %d jumps over the lazy dog\n", i)
	}
	script := "tr a-z A-Z | grep ZEBRA"

	streamOnce := func(spec *dist.FaultSpec) (string, []dist.WorkerStats) {
		pool := NewWorkerPool(w1, w2)
		pool.SetDialTimeout(500 * time.Millisecond)
		pool.SetChunkTimeout(500 * time.Millisecond)
		pool.SetRetryPolicy(3, 10*time.Millisecond, 100*time.Millisecond)
		if spec != nil {
			inj := dist.NewInjector(1)
			inj.Set(pool.WorkerNames()[0], *spec)
			pool.SetFaultInjector(inj)
		}
		sess := NewSession(DefaultOptions(8))
		sess.Dir = dir
		sess.UseWorkers(pool)

		var out bytes.Buffer
		job, err := sess.Start(context.Background(), script,
			JobIO{Stdout: &out},
			WithStreamInput(StreamConfig{
				Reader:      bytes.NewReader(data.Bytes()),
				Interval:    time.Hour,
				WindowBytes: 64 << 10,
			}))
		if err != nil {
			t.Fatal(err)
		}
		code, err := job.Wait()
		if err != nil || code != 0 {
			t.Fatalf("stream job (fault %v) = code %d, err %v", spec, code, err)
		}
		st := job.Stats()
		if st.Stream == nil || st.Stream.Windows < 2 {
			t.Fatalf("expected a multi-window stream, got %+v", st.Stream)
		}
		return out.String(), pool.Stats()
	}

	clean, _ := streamOnce(nil)
	if len(clean) == 0 {
		t.Fatal("clean streaming run produced no output")
	}
	faulted, stats := streamOnce(&dist.FaultSpec{Kind: dist.FaultKill, AfterBytes: 12_000, Times: 1})
	if faulted != clean {
		t.Fatalf("output diverged under worker kill (%d vs %d bytes) — corruption or loss",
			len(faulted), len(clean))
	}
	var healed int64
	for _, st := range stats {
		healed += st.RedispatchedRemote + st.Redispatched + st.Retries
	}
	if healed == 0 {
		t.Error("worker kill left no redispatch/retry trace — fault never exercised the recovery path")
	}
}
