package pash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dfg"
)

// revSpec is the test's custom stateless command: it reverses each line
// and appends "#<len>". The command and kernel are written separately,
// so the equivalence tests also pin the two implementations together.
func revSpec() CommandSpec {
	return CommandSpec{
		Name: "myrev",
		Run: func(args []string, stdin io.Reader, stdout io.Writer) error {
			data, err := io.ReadAll(stdin)
			if err != nil {
				return err
			}
			for len(data) > 0 {
				i := bytes.IndexByte(data, '\n')
				line := data
				if i >= 0 {
					line = data[:i]
					data = data[i+1:]
				} else {
					data = nil
				}
				out := make([]byte, 0, len(line)+8)
				for j := len(line) - 1; j >= 0; j-- {
					out = append(out, line[j])
				}
				fmt.Fprintf(stdout, "%s#%d\n", out, len(line))
			}
			return nil
		},
		Annotation: StdinStdout(ClassStateless),
		Kernel: func(args []string) (Kernel, bool) {
			if len(args) != 0 {
				return nil, false
			}
			return &revKernel{}, true
		},
	}
}

type revKernel struct{ carry []byte }

func (k *revKernel) Apply(out, in []byte) []byte {
	for len(in) > 0 {
		i := bytes.IndexByte(in, '\n')
		if i < 0 {
			k.carry = append(k.carry, in...)
			return out
		}
		line := in[:i]
		if len(k.carry) > 0 {
			k.carry = append(k.carry, line...)
			line = k.carry
		}
		out = k.emit(out, line)
		k.carry = k.carry[:0]
		in = in[i+1:]
	}
	return out
}

func (k *revKernel) emit(out, line []byte) []byte {
	for j := len(line) - 1; j >= 0; j-- {
		out = append(out, line[j])
	}
	out = append(out, '#')
	out = strconv.AppendInt(out, int64(len(line)), 10)
	return append(out, '\n')
}

func (k *revKernel) Finish(out []byte) []byte {
	if len(k.carry) > 0 {
		out = k.emit(out, k.carry)
		k.carry = k.carry[:0]
	}
	return out
}

func (k *revKernel) Status() error { return nil }

// sumSpec is the test's custom pure command: `mysum` prints the sum of
// integer lines, parallelized by a custom associative aggregator.
func sumSpec() CommandSpec {
	sum := func(r io.Reader) (int64, error) {
		data, err := io.ReadAll(r)
		if err != nil {
			return 0, err
		}
		var total int64
		for _, f := range strings.Fields(string(data)) {
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	return CommandSpec{
		Name: "mysum",
		Run: func(args []string, stdin io.Reader, stdout io.Writer) error {
			total, err := sum(stdin)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(stdout, "%d\n", total)
			return err
		},
		Annotation: StdinStdout(ClassPure),
		Aggregator: &AggregatorSpec{
			AggName: "mysum-agg",
			AggArgs: []string{},
			Agg: func(args []string, inputs []io.Reader, stdout io.Writer) error {
				var total int64
				for _, r := range inputs {
					n, err := sum(r)
					if err != nil {
						return err
					}
					total += n
				}
				_, err := fmt.Fprintf(stdout, "%d\n", total)
				return err
			},
			Associative: true,
		},
	}
}

// chunkyReader delivers its underlying data in random-sized reads, so
// kernels and framed replicas see arbitrary chunk boundaries.
type chunkyReader struct {
	data []byte
	rng  *rand.Rand
}

func (r *chunkyReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := 1 + r.rng.Intn(701)
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func runExt(t *testing.T, opts Options, specs []CommandSpec, script string, stdin io.Reader) string {
	t.Helper()
	s := NewSession(opts)
	for _, spec := range specs {
		if err := s.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	code, err := s.Run(context.Background(), script, stdin, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("%q: code=%d err=%v", script, code, err)
	}
	return out.String()
}

// TestExtensionEquivalenceProperty is the extension-API mirror of the
// builtin kernel equivalence tests: a user-registered command with a
// kernel must be byte-identical across sequential, width-8 round-robin
// split (unfused), and width-8 fused execution, under random input
// chunking.
func TestExtensionEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	words := []string{"alpha", "beta", "gamma", "delta", "", "x", "longer-line-with-content"}
	for round := 0; round < 6; round++ {
		var in bytes.Buffer
		lines := rng.Intn(4000)
		for i := 0; i < lines; i++ {
			fmt.Fprintf(&in, "%s %d\n", words[rng.Intn(len(words))], rng.Int63())
		}
		if round%2 == 1 && in.Len() > 0 {
			in.Truncate(in.Len() - 1) // exercise the unterminated final line
		}
		input := in.Bytes()

		script := "myrev | tr a-z A-Z"
		specs := []CommandSpec{revSpec()}
		seq := runExt(t, SequentialOptions(), specs, script,
			&chunkyReader{data: input, rng: rand.New(rand.NewSource(int64(round)))})

		rrOpts := DefaultOptions(8)
		rrOpts.SplitMode = SplitRoundRobin
		rrOpts.DisableFusion = true
		rr := runExt(t, rrOpts, specs, script,
			&chunkyReader{data: input, rng: rand.New(rand.NewSource(int64(round) + 100))})

		fusedOpts := DefaultOptions(8)
		fusedOpts.SplitMode = SplitRoundRobin
		fused := runExt(t, fusedOpts, specs, script,
			&chunkyReader{data: input, rng: rand.New(rand.NewSource(int64(round) + 200))})

		if seq != rr {
			t.Fatalf("round %d: rr-split diverged from sequential (%d lines)", round, lines)
		}
		if seq != fused {
			t.Fatalf("round %d: fused diverged from sequential (%d lines)", round, lines)
		}
	}
}

// TestExtensionAggregatorEquivalence: the custom pure command computes
// the same result sequentially and through the width-8 map/aggregate
// tree.
func TestExtensionAggregatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var in bytes.Buffer
	var want int64
	for i := 0; i < 5000; i++ {
		n := rng.Int63n(1_000_000)
		want += n
		fmt.Fprintf(&in, "%d\n", n)
	}
	input := in.String()
	specs := []CommandSpec{sumSpec()}
	seq := runExt(t, SequentialOptions(), specs, "mysum", strings.NewReader(input))
	par := runExt(t, DefaultOptions(8), specs, "mysum", strings.NewReader(input))
	if seq != par {
		t.Fatalf("parallel sum %q != sequential %q", par, seq)
	}
	if strings.TrimSpace(seq) != fmt.Sprint(want) {
		t.Fatalf("sum = %q, want %d", seq, want)
	}
}

// TestExtensionStructure asserts the custom command really sits inside
// the fast paths: the planned width-8 graph contains a fused node whose
// stages include the external kernel's command, a streaming round-robin
// split, and (for the pure form) a fan-in aggregation tree of the
// custom aggregate.
func TestExtensionStructure(t *testing.T) {
	s := NewSession(DefaultOptions(8))
	for _, spec := range []CommandSpec{revSpec(), sumSpec()} {
		if err := s.Register(spec); err != nil {
			t.Fatal(err)
		}
	}

	plan, err := s.CompileExec("myrev | tr a-z A-Z")
	if err != nil {
		t.Fatal(err)
	}
	fusedWithExt, rrSplits := 0, 0
	for _, item := range plan.Items {
		for _, n := range item.Graph.Nodes {
			if n.Kind == dfg.KindFused {
				for _, st := range n.Stages {
					if st.Name == "myrev" {
						fusedWithExt++
					}
				}
			}
			if n.Kind == dfg.KindSplit && n.RoundRobin {
				rrSplits++
			}
		}
	}
	if fusedWithExt != 8 {
		t.Errorf("fused stages running the external kernel = %d, want 8 (one per replica)", fusedWithExt)
	}
	if rrSplits != 1 {
		t.Errorf("streaming rr splits = %d, want 1", rrSplits)
	}

	plan, err = s.CompileExec("mysum")
	if err != nil {
		t.Fatal(err)
	}
	aggNodes, mapNodes := 0, 0
	for _, item := range plan.Items {
		for _, n := range item.Graph.Nodes {
			if n.Kind == dfg.KindAgg && n.Name == "mysum-agg" {
				aggNodes++
			}
			if n.Kind == dfg.KindMap && n.Name == "mysum" {
				mapNodes++
			}
		}
	}
	if mapNodes != 8 {
		t.Errorf("map instances = %d, want 8", mapNodes)
	}
	// Width 8 at fan-in 4: two leaf aggregates + one root.
	if aggNodes != 3 {
		t.Errorf("aggregation-tree nodes = %d, want 3 (fan-in-4 tree over 8 maps)", aggNodes)
	}

	// The Graphviz export shows the same structure.
	dot := plan.Dot()
	if !strings.Contains(dot, "mysum-agg") || !strings.Contains(dot, "digraph") {
		t.Errorf("Plan.Dot missing expected content:\n%s", dot)
	}
}

// TestShadowBuiltinPrecedence pins the shadowing contract: registering
// `grep` replaces the builtin within the session — implementation,
// kernel, aggregator, and annotation all stop applying — and the plan
// cache is invalidated so already-planned regions see the change.
func TestShadowBuiltinPrecedence(t *testing.T) {
	s := NewSession(DefaultOptions(8))
	script := "grep -c a"
	input := func() io.Reader { return strings.NewReader("a\nb\nab\n") }

	var out bytes.Buffer
	if code, err := s.Run(context.Background(), script, input(), &out, io.Discard); err != nil || code != 0 {
		t.Fatalf("builtin grep: code=%d err=%v", code, err)
	}
	if out.String() != "2\n" {
		t.Fatalf("builtin grep output = %q", out.String())
	}
	// Run it again so the region is warm in the plan cache.
	out.Reset()
	if _, err := s.Run(context.Background(), script, input(), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if st := s.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("expected a warm plan cache before shadowing: %+v", st)
	}

	// Shadow grep: the user implementation ignores the pattern and
	// reports a marker. User registration wins; the cached plan for the
	// same region must not survive.
	s.RegisterCommand("grep", func(args []string, stdin io.Reader, stdout io.Writer) error {
		io.Copy(io.Discard, stdin)
		fmt.Fprintf(stdout, "custom-grep:%s\n", strings.Join(args, ","))
		return nil
	})
	if st := s.PlanCacheStats(); st.Entries != 0 {
		t.Errorf("plan cache not busted by re-registration: %+v", st)
	}
	out.Reset()
	if code, err := s.Run(context.Background(), script, input(), &out, io.Discard); err != nil || code != 0 {
		t.Fatalf("custom grep: code=%d err=%v", code, err)
	}
	if out.String() != "custom-grep:-c,a\n" {
		t.Errorf("custom grep output = %q (builtin behavior survived shadowing)", out.String())
	}

	// The builtin's metadata must not leak onto the replacement: no
	// aggregator (grep -c's sum pair) and no fusion kernel may apply,
	// and without an annotation the name classifies conservatively —
	// the planned graph keeps one sequential grep node.
	plan, err := s.CompileExec("tr a-z A-Z | grep -c A")
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range plan.Items {
		for _, n := range item.Graph.Nodes {
			if n.Kind == dfg.KindFused {
				for _, st := range n.Stages {
					if st.Name == "grep" {
						t.Errorf("shadowed grep was fused via the builtin kernel")
					}
				}
			}
			if n.Kind == dfg.KindMap || n.Kind == dfg.KindAgg {
				t.Errorf("shadowed grep was parallelized via the builtin aggregator: %v", n)
			}
		}
	}

	// A fresh session is unaffected by the shadowing.
	s2 := NewSession(DefaultOptions(4))
	out.Reset()
	if _, err := s2.Run(context.Background(), script, input(), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if out.String() != "2\n" {
		t.Errorf("shadowing leaked into a fresh session: %q", out.String())
	}
}

// TestShadowWithSpecRestoresFastPaths: shadowing a builtin name with a
// full spec (annotation + kernel) makes the replacement parallelize on
// its own terms.
func TestShadowWithSpecRestoresFastPaths(t *testing.T) {
	spec := revSpec()
	spec.Name = "grep" // deliberately collide with a builtin
	s := NewSession(DefaultOptions(8))
	if err := s.Register(spec); err != nil {
		t.Fatal(err)
	}
	plan, err := s.CompileExec("grep | tr a-z A-Z")
	if err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, item := range plan.Items {
		for _, n := range item.Graph.Nodes {
			if n.Kind == dfg.KindFused {
				for _, st := range n.Stages {
					if st.Name == "grep" {
						fused++
					}
				}
			}
		}
	}
	if fused != 8 {
		t.Errorf("re-specced grep fused stages = %d, want 8", fused)
	}
}

// TestAnnotationBuilderClauses exercises the predicate combinators
// through classification behavior: a guarded clause demotes -s
// invocations to side-effectful (sequential), everything else stays
// stateless and parallelizes.
func TestAnnotationBuilderClauses(t *testing.T) {
	spec := revSpec()
	spec.Annotation = NewAnnotation().
		When(AnyOf(Opt("-s"), AllOf(Opt("-x"), Not(Opt("-y")))), ClassSideEffectful, nil, nil).
		Otherwise(ClassStateless, []IO{Stdin()}, []IO{Stdout()})
	s := NewSession(DefaultOptions(8))
	if err := s.Register(spec); err != nil {
		t.Fatal(err)
	}

	countMaps := func(script string) int {
		t.Helper()
		plan, err := s.CompileExec(script)
		if err != nil {
			t.Fatal(err)
		}
		replicas := 0
		for _, item := range plan.Items {
			for _, n := range item.Graph.Nodes {
				if n.Kind == dfg.KindCommand && n.Name == "myrev" && n.Framed {
					replicas++
				}
				if n.Kind == dfg.KindFused {
					for _, st := range n.Stages {
						if st.Name == "myrev" {
							replicas++
						}
					}
				}
			}
		}
		return replicas
	}
	if got := countMaps("myrev | tr a-z A-Z"); got != 8 {
		t.Errorf("unguarded invocation replicas = %d, want 8", got)
	}
	if got := countMaps("myrev -s | tr a-z A-Z"); got != 0 {
		t.Errorf("-s invocation replicas = %d, want 0 (side-effectful clause)", got)
	}
	if got := countMaps("myrev -x | tr a-z A-Z"); got != 0 {
		t.Errorf("-x invocation replicas = %d, want 0 (AllOf(-x, Not(-y)))", got)
	}
	// -x -y: the AllOf guard fails (Not(-y) is false) → stateless arm.
	// The kernel factory rejects flagged invocations, so it replicates
	// framed rather than fusing.
	if got := countMaps("myrev -x -y | tr a-z A-Z"); got != 8 {
		t.Errorf("-x -y invocation replicas = %d, want 8", got)
	}
}

// TestRegisterValidation: malformed specs are rejected.
func TestRegisterValidation(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	noop := func(a []string, r io.Reader, w io.Writer) error { return nil }
	if err := s.Register(CommandSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if err := s.Register(CommandSpec{Name: "x"}); err == nil {
		t.Error("spec without Run accepted")
	}
	if err := s.Register(CommandSpec{
		Name: "x", Run: noop,
		Aggregator: &AggregatorSpec{},
	}); err == nil {
		t.Error("aggregator without AggName accepted")
	}
	if err := s.Register(CommandSpec{
		Name: "x", Run: noop,
		Annotation: NewAnnotation(),
	}); err == nil {
		t.Error("annotation without clauses accepted")
	}
	// A supplied aggregate implementation under the command's own name
	// would overwrite Run; self-aggregation is spelled with a nil Agg.
	if err := s.Register(CommandSpec{
		Name: "x", Run: noop,
		Aggregator: &AggregatorSpec{
			AggName: "x",
			Agg:     func(a []string, in []io.Reader, w io.Writer) error { return nil },
		},
	}); err == nil {
		t.Error("Agg under the command's own name accepted")
	}
	// ... and with a nil Agg it is allowed (sort / sort -m style).
	if err := s.Register(CommandSpec{
		Name: "x", Run: noop,
		Annotation: StdinStdout(ClassPure),
		Aggregator: &AggregatorSpec{AggName: "x", AggArgs: []string{"-m"}},
	}); err != nil {
		t.Errorf("self-aggregating spec rejected: %v", err)
	}
}

// TestAggNameShadowsBuiltinAnnotation: registering an aggregate
// implementation under a builtin's name clears that builtin's
// annotation too — its parallelizability claims must not apply to the
// stdin-ignoring aggregate wrapper now installed there.
func TestAggNameShadowsBuiltinAnnotation(t *testing.T) {
	spec := sumSpec()
	spec.Aggregator.AggName = "rev" // collide with a builtin stateless command
	s := NewSession(DefaultOptions(8))
	if err := s.Register(spec); err != nil {
		t.Fatal(err)
	}
	plan, err := s.CompileExec("cat | rev")
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range plan.Items {
		for _, n := range item.Graph.Nodes {
			if n.Name == "rev" && (n.Framed || n.Kind == dfg.KindFused) {
				t.Errorf("shadowed rev still parallelized via builtin annotation: %v", n)
			}
			if n.Kind == dfg.KindFused {
				for _, st := range n.Stages {
					if st.Name == "rev" {
						t.Errorf("shadowed rev fused via builtin kernel")
					}
				}
			}
		}
	}
}
