package pash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// chunkReader yields data in random-sized chunks, simulating a bursty
// socket. Window boundaries must not depend on this chunking.
type chunkReader struct {
	data []byte
	rng  *rand.Rand
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := 1 + c.rng.Intn(len(c.data))
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// emitRecorder captures each cumulative emission (one Write per
// window) separately.
type emitRecorder struct {
	mu    sync.Mutex
	emits []string
}

func (e *emitRecorder) Write(p []byte) (int, error) {
	e.mu.Lock()
	e.emits = append(e.emits, string(p))
	e.mu.Unlock()
	return len(p), nil
}

func (e *emitRecorder) snapshot() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.emits...)
}

// cutWindows replicates the windower's deterministic size-trigger
// boundaries: each window ends at the first line end at or past
// maxBytes; the remainder is the final window.
func cutWindows(in []byte, maxBytes int) [][]byte {
	var wins [][]byte
	rest := in
	for len(rest) >= maxBytes {
		i := bytes.IndexByte(rest[maxBytes-1:], '\n')
		if i < 0 {
			break
		}
		end := maxBytes - 1 + i
		wins = append(wins, rest[:end+1])
		rest = rest[end+1:]
	}
	if len(rest) > 0 {
		wins = append(wins, rest)
	}
	return wins
}

func randomLines(rng *rand.Rand, n int) []byte {
	words := []string{"ab", "abc", "b", "cd", "ab ab", "zz top", "abba"}
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintln(&b, words[rng.Intn(len(words))])
	}
	return b.Bytes()
}

func batchRun(t *testing.T, script string, input []byte) string {
	t.Helper()
	s := NewSession(SequentialOptions())
	var out bytes.Buffer
	code, err := s.Run(context.Background(), script, bytes.NewReader(input), &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("batch %q: code=%d err=%v", script, code, err)
	}
	return out.String()
}

// TestStreamCumulativeMatchesBatchPrefix is the windowed-aggregation
// property: for associative tails (wc -l, grep -c, uniq -c), every
// cumulative emission over a randomly chunked stream equals the batch
// result over the same prefix of windows, at widths 1 and 8.
func TestStreamCumulativeMatchesBatchPrefix(t *testing.T) {
	scripts := []string{
		"wc -l",
		"grep -c ab",
		"tr a-z A-Z | uniq -c",
		"grep b | wc -l",
	}
	for _, width := range []int{1, 8} {
		for si, script := range scripts {
			t.Run(fmt.Sprintf("w%d/%s", width, script), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(41*width + si)))
				input := randomLines(rng, 300)
				maxBytes := 64 + rng.Intn(512)
				wins := cutWindows(input, maxBytes)

				s := NewSession(DefaultOptions(width))
				rec := &emitRecorder{}
				j, err := s.Start(context.Background(), script, JobIO{Stdout: rec, Stderr: os.Stderr},
					WithStreamInput(StreamConfig{
						Reader:      &chunkReader{data: input, rng: rng},
						Interval:    time.Hour,
						WindowBytes: int64(maxBytes),
					}))
				if err != nil {
					t.Fatal(err)
				}
				code, err := j.Wait()
				if err != nil || code != 0 {
					t.Fatalf("stream: code=%d err=%v", code, err)
				}

				emits := rec.snapshot()
				if len(emits) != len(wins) {
					t.Fatalf("emissions = %d, want one per window (%d)", len(emits), len(wins))
				}
				var prefix []byte
				for k, win := range wins {
					prefix = append(prefix, win...)
					want := batchRun(t, script, prefix)
					if emits[k] != want {
						t.Fatalf("window %d: emission %q != batch over prefix %q", k, emits[k], want)
					}
				}
				st := j.Stats()
				if st.Stream == nil || st.Stream.Emit != "cumulative" {
					t.Fatalf("stream stats missing or wrong emit: %+v", st.Stream)
				}
				if st.Stream.Windows != int64(len(wins)) || st.Stream.Bytes != int64(len(input)) {
					t.Errorf("stream stats windows=%d bytes=%d, want %d/%d",
						st.Stream.Windows, st.Stream.Bytes, len(wins), len(input))
				}
			})
		}
	}
}

// TestStreamDeltaMatchesBatch: an all-stateless pipeline's window
// outputs concatenate to exactly the batch output.
func TestStreamDeltaMatchesBatch(t *testing.T) {
	for _, width := range []int{1, 8} {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 * width)))
			input := randomLines(rng, 400)
			s := NewSession(DefaultOptions(width))
			var out bytes.Buffer
			j, err := s.Start(context.Background(), "grep ab | tr a-z A-Z", JobIO{Stdout: &out},
				WithStreamInput(StreamConfig{
					Reader:      &chunkReader{data: input, rng: rng},
					Interval:    time.Hour,
					WindowBytes: 256,
				}))
			if err != nil {
				t.Fatal(err)
			}
			if code, err := j.Wait(); err != nil || code != 0 {
				t.Fatalf("stream: code=%d err=%v", code, err)
			}
			want := batchRun(t, "grep ab | tr a-z A-Z", input)
			if out.String() != want {
				t.Errorf("delta stream diverged from batch:\nstream %q\nbatch  %q", out.String(), want)
			}
		})
	}
}

// TestStreamTopKFold: the two-stage sort|head fold stays sound across
// windows.
func TestStreamTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var input bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&input, "%04d line\n", rng.Intn(10000))
	}
	script := "sort | head -n 5"
	rec := &emitRecorder{}
	s := NewSession(DefaultOptions(4))
	j, err := s.Start(context.Background(), script, JobIO{Stdout: rec},
		WithStreamInput(StreamConfig{
			Reader:      &chunkReader{data: input.Bytes(), rng: rng},
			Interval:    time.Hour,
			WindowBytes: 512,
		}))
	if err != nil {
		t.Fatal(err)
	}
	if code, err := j.Wait(); err != nil || code != 0 {
		t.Fatalf("stream: code=%d err=%v", code, err)
	}
	emits := rec.snapshot()
	if len(emits) == 0 {
		t.Fatal("no emissions")
	}
	wins := cutWindows(input.Bytes(), 512)
	var prefix []byte
	for k, win := range wins {
		prefix = append(prefix, win...)
		if want := batchRun(t, script, prefix); emits[k] != want {
			t.Fatalf("window %d: top-k emission %q != batch %q", k, emits[k], want)
		}
	}
}

// TestStreamNotStreamable: stateful non-associative scripts are
// rejected with the typed error before any execution.
func TestStreamNotStreamable(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	for _, script := range []string{
		"grep a && grep b", // not a plain pipeline
		"sort | uniq -c",   // two-stage fold would be unsound
		"wc -l > out.txt",  // stream owns stdout
		"cd /tmp",          // builtin
		"grep a; grep b",   // two statements
		"x=1 grep a",       // assignment prefix
	} {
		j, err := s.Start(context.Background(), script, JobIO{},
			WithStreamInput(StreamConfig{Reader: strings.NewReader("a\n")}))
		if err != nil {
			t.Fatalf("%q: start: %v", script, err)
		}
		code, err := j.Wait()
		if err == nil || !isNotStreamable(err) || code != 2 {
			t.Errorf("%q: code=%d err=%v, want ErrNotStreamable and code 2", script, code, err)
		}
	}
}

func isNotStreamable(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not streamable") ||
		errIs(err, ErrNotStreamable)
}

func errIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestStreamFollowCheckpointResume is the failover contract: a job
// over a growing file is killed between windows and a new job resumes
// from the checkpoint, re-reading only the post-checkpoint suffix and
// continuing the emission sequence exactly where the first job left it.
func TestStreamFollowCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "app.log")
	ckpt := filepath.Join(dir, "job.ckpt")

	rng := rand.New(rand.NewSource(5))
	input := randomLines(rng, 400)
	const winBytes = 256
	wins := cutWindows(input, winBytes)
	// Only size-triggered windows run (interval is huge); the tail that
	// never fills a window stays pending, so use the full-window count.
	full := len(wins)
	if int64(len(wins[full-1])) < winBytes {
		full--
	}
	if full < 4 {
		t.Fatalf("test input too small: %d full windows", full)
	}
	// Reference: cumulative batch results per window prefix.
	script := "grep -c ab"
	var want []string
	var prefix []byte
	for k := 0; k < full; k++ {
		prefix = append(prefix, wins[k]...)
		want = append(want, batchRun(t, script, prefix))
		_ = k
	}

	// Phase 1: write enough for the first half of the windows, run a
	// job until it has checkpointed all of them, then cancel it.
	half := full / 2
	var phase1 []byte
	for k := 0; k < half; k++ {
		phase1 = append(phase1, wins[k]...)
	}
	if err := os.WriteFile(log, phase1, 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSession(DefaultOptions(2))
	rec1 := &emitRecorder{}
	j1, err := s.Start(context.Background(), script, JobIO{Stdout: rec1},
		WithStreamInput(StreamConfig{
			FollowPath:     log,
			Interval:       time.Hour,
			WindowBytes:    winBytes,
			CheckpointPath: ckpt,
			Poll:           5 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		st := j1.Stats()
		return st.Stream != nil && st.Stream.CheckpointSeq >= int64(half)
	})
	j1.Cancel()
	if code, _ := j1.Wait(); code != 130 {
		t.Fatalf("cancelled stream job exited %d, want 130", code)
	}

	// Phase 2: append the rest and resume from the checkpoint.
	f, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rest []byte
	for k := half; k < len(wins); k++ {
		rest = append(rest, wins[k]...)
	}
	if _, err := f.Write(rest); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec2 := &emitRecorder{}
	j2, err := s.Start(context.Background(), script, JobIO{Stdout: rec2},
		WithStreamInput(StreamConfig{
			FollowPath:     log,
			Interval:       time.Hour,
			WindowBytes:    winBytes,
			CheckpointPath: ckpt,
			Resume:         true,
			Poll:           5 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		st := j2.Stats()
		return st.Stream != nil && st.Stream.Windows >= int64(full)
	})
	st2 := j2.Stats()
	j2.Cancel()
	j2.Wait()

	got := append(rec1.snapshot(), rec2.snapshot()...)
	if len(got) != full {
		t.Fatalf("emissions = %d, want %d", len(got), full)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("window %d: emission %q != uninterrupted %q", k, got[k], want[k])
		}
	}
	if st2.Stream == nil || !st2.Stream.Resumed {
		t.Fatal("second job did not report a resume")
	}
	// Replays only the post-checkpoint suffix: the resumed job's source
	// bytes are exactly the windows after the checkpoint, not phase 1.
	var suffix int64
	for k := half; k < full; k++ {
		suffix += int64(len(wins[k]))
	}
	if st2.Stream.Bytes != suffix {
		t.Errorf("resumed job read %d bytes, want only the %d-byte suffix", st2.Stream.Bytes, suffix)
	}
}

// TestStreamBackpressurePausesSource: a tiny MaxPipeMemory throttles
// intake (pauses counted) instead of killing the job, and the stream's
// output is still exact.
func TestStreamBackpressure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	input := randomLines(rng, 2000)
	s := NewSession(DefaultOptions(2))
	rec := &emitRecorder{}
	j, err := s.Start(context.Background(), "wc -l", JobIO{Stdout: rec},
		WithStreamInput(StreamConfig{
			Reader:      &chunkReader{data: input, rng: rng},
			Interval:    time.Hour,
			WindowBytes: 512,
		}),
		WithLimits(JobLimits{MaxPipeMemory: 1024}))
	if err != nil {
		t.Fatal(err)
	}
	if code, err := j.Wait(); err != nil || code != 0 {
		t.Fatalf("stream under backpressure: code=%d err=%v", code, err)
	}
	emits := rec.snapshot()
	if len(emits) == 0 {
		t.Fatal("no emissions")
	}
	if got, want := emits[len(emits)-1], batchRun(t, "wc -l", input); got != want {
		t.Errorf("final count %q != batch %q", got, want)
	}
	if st := j.Stats(); st.Stream == nil || st.Stream.Pauses == 0 {
		t.Errorf("expected backpressure pauses, got %+v", j.Stats().Stream)
	}
}

// TestJobStatsLiveBytes: a *running* batch job reports non-zero
// bytes/chunks moved (the zeros-until-Wait bug).
func TestJobStatsLiveBytes(t *testing.T) {
	s := NewSession(DefaultOptions(4))
	pr, pw := io.Pipe()
	j, err := s.Start(context.Background(), "grep ab | tr a-z A-Z", JobIO{Stdin: pr, Stdout: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte("ab cd ef gh\n"), 1024)
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := pw.Write(line); err != nil {
				return
			}
		}
	}()
	waitFor(t, 10*time.Second, func() bool {
		st := j.Stats()
		return st.Running && st.Interp.BytesMoved > 0 && st.Interp.ChunksMoved > 0
	})
	pw.Close()
	if code, err := j.Wait(); err != nil || code != 0 {
		t.Fatalf("job: code=%d err=%v", code, err)
	}
	if st := j.Stats(); st.Interp.BytesMoved == 0 {
		t.Error("finished job lost its traffic counters")
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
