package pash

// Resource governance and fault containment re-exports: the public face
// of the runtime's per-job budgets, load-shedding scheduler bounds, and
// panic containment ring. See "The coordinator failure model" in the
// runtime README for the full story.

import "repro/internal/runtime"

// JobLimits bounds one job's resource consumption: wall-clock time,
// stdout bytes, queued pipe memory, replica width, and (for untrusted
// scripts) filesystem confinement. The zero value means unlimited.
type JobLimits = runtime.JobLimits

// BudgetError reports which budget a job breached; it matches
// ErrBudgetExceeded under errors.Is.
type BudgetError = runtime.BudgetError

// BudgetUsage is a point-in-time snapshot of a job's consumption.
type BudgetUsage = runtime.BudgetUsage

// PanicStats counts the panics the process has contained (converted
// into job-scoped errors) and carries the most recent records.
type PanicStats = runtime.PanicStats

// ErrBudgetExceeded is the sentinel all budget breaches match.
var ErrBudgetExceeded = runtime.ErrBudgetExceeded

// ErrAdmissionShed is the sentinel all shed admissions match: the
// scheduler's bounded queue refused the job instead of queueing it.
var ErrAdmissionShed = runtime.ErrAdmissionShed

// ExitBudgetExceeded is the exit status of a job cancelled for
// exceeding one of its resource budgets.
const ExitBudgetExceeded = runtime.ExitBudgetExceeded

// Panics snapshots the process-wide panic containment ring.
func Panics() PanicStats { return runtime.Panics() }
