package pash

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJobWallTimeout: a runaway script is cancelled at its wall budget
// with the distinct budget exit code, not the generic cancellation 130.
func TestJobWallTimeout(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	job, err := s.Start(context.Background(), "while true; do true; done", JobIO{},
		WithLimits(JobLimits{WallTimeout: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("wall budget never fired")
	}
	code, werr := job.Wait()
	if code != ExitBudgetExceeded {
		t.Errorf("exit code = %d, want %d", code, ExitBudgetExceeded)
	}
	if !errors.Is(werr, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", werr)
	}
	var be *BudgetError
	if !errors.As(werr, &be) || be.Resource != "wall-clock" {
		t.Errorf("breach = %+v, want wall-clock", be)
	}
	st := job.Stats()
	if st.Limits.WallTimeout != 50*time.Millisecond {
		t.Errorf("stats do not echo the configured limits: %+v", st.Limits)
	}
}

// TestJobOutputBudget: a job flooding stdout is stopped at its byte
// budget; what was delivered before the breach stays delivered.
func TestJobOutputBudget(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	var out bytes.Buffer
	job, err := s.Start(context.Background(), "seq 1000000", JobIO{Stdout: &out},
		WithLimits(JobLimits{MaxOutputBytes: 4096, WallTimeout: 10 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	code, werr := job.Wait()
	if code != ExitBudgetExceeded || !errors.Is(werr, ErrBudgetExceeded) {
		t.Fatalf("code=%d err=%v, want %d + ErrBudgetExceeded", code, werr, ExitBudgetExceeded)
	}
	var be *BudgetError
	if !errors.As(werr, &be) || be.Resource != "output-bytes" {
		t.Errorf("breach = %+v, want output-bytes", be)
	}
	// Nothing past the budget may reach the sink (a whole write is
	// refused when charging it would cross the line, so fewer bytes than
	// the budget can arrive — never more).
	if out.Len() > 4096 {
		t.Errorf("delivered %d bytes past a 4096-byte budget", out.Len())
	}
	if u := job.Stats().Budget; u.OutputBytes <= 0 {
		t.Errorf("budget usage not surfaced: %+v", u)
	}
}

// TestJobPipeMemoryBudget: queued pipe payload is bounded per job — a
// pipeline moving far more data than the budget breaches with the typed
// error instead of hoarding pooled blocks.
func TestJobPipeMemoryBudget(t *testing.T) {
	s := NewSession(DefaultOptions(8))
	job, err := s.Start(context.Background(), "seq 300000 | sort | wc -l", JobIO{Stdout: io.Discard},
		WithLimits(JobLimits{MaxPipeMemory: 512, WallTimeout: 10 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	code, werr := job.Wait()
	if code != ExitBudgetExceeded || !errors.Is(werr, ErrBudgetExceeded) {
		t.Fatalf("code=%d err=%v, want %d + ErrBudgetExceeded", code, werr, ExitBudgetExceeded)
	}
	var be *BudgetError
	if !errors.As(werr, &be) || be.Resource != "pipe-memory" {
		t.Errorf("breach = %+v, want pipe-memory", be)
	}
}

// TestJobMaxProcsStaysCorrect: capping a job's width must degrade its
// parallelism, never its output.
func TestJobMaxProcsStaysCorrect(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	for i := 0; i < 3000; i++ {
		sb.WriteString("gamma beta alpha delta\n")
	}
	if err := os.WriteFile(filepath.Join(dir, "in.txt"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	script := "cat in.txt | tr -s ' ' '\\n' | sort | uniq -c"

	ref := NewSession(SequentialOptions())
	ref.Dir = dir
	var want bytes.Buffer
	if code, err := ref.Run(context.Background(), script, strings.NewReader(""), &want, io.Discard); err != nil || code != 0 {
		t.Fatalf("reference: code=%d err=%v", code, err)
	}

	s := NewSession(DefaultOptions(8))
	s.Dir = dir
	for _, cap := range []int{1, 2, 8} {
		var out bytes.Buffer
		job, err := s.Start(context.Background(), script, JobIO{Stdout: &out},
			WithLimits(JobLimits{MaxProcs: cap}))
		if err != nil {
			t.Fatal(err)
		}
		if code, err := job.Wait(); err != nil || code != 0 {
			t.Fatalf("MaxProcs=%d: code=%d err=%v", cap, code, err)
		}
		if out.String() != want.String() {
			t.Errorf("MaxProcs=%d diverged from sequential", cap)
		}
	}
}

// TestJobSandbox: a sandboxed job sees its working directory and
// nothing else — absolute paths, ".." escapes, and cd out of the jail
// all fail without reaching the host filesystem.
func TestJobSandbox(t *testing.T) {
	outside := t.TempDir()
	if err := os.WriteFile(filepath.Join(outside, "secret.txt"), []byte("secret\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(outside, "jail")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ok.txt"), []byte("inside\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSession(DefaultOptions(2))
	s.Dir = dir

	run := func(script string) (int, error, string) {
		t.Helper()
		var out bytes.Buffer
		job, err := s.Start(context.Background(), script, JobIO{Stdout: &out},
			WithLimits(JobLimits{Sandbox: true, WallTimeout: 10 * time.Second}))
		if err != nil {
			t.Fatal(err)
		}
		code, werr := job.Wait()
		return code, werr, out.String()
	}

	// Inside the jail: normal operation.
	if code, err, out := run("cat ok.txt | tr a-z A-Z"); code != 0 || err != nil || out != "INSIDE\n" {
		t.Errorf("in-jail read: code=%d err=%v out=%q", code, err, out)
	}
	// Escapes fail and leak nothing.
	for _, script := range []string{
		"cat ../secret.txt",
		"cat " + filepath.Join(outside, "secret.txt"),
		"cd .. ; cat secret.txt",
		"cd /; cat etc/hostname",
		"tr a-z A-Z < ../secret.txt",
	} {
		code, _, out := run(script)
		if code == 0 {
			t.Errorf("%q: escaped the sandbox (exit 0)", script)
		}
		if strings.Contains(out, "secret") {
			t.Errorf("%q: leaked jailed content: %q", script, out)
		}
	}
	// Writes outside are refused too (and must not create the file).
	if code, _, _ := run("echo x > ../created.txt"); code == 0 {
		t.Error("redirect outside the jail succeeded")
	}
	if _, err := os.Stat(filepath.Join(outside, "created.txt")); !os.IsNotExist(err) {
		t.Errorf("sandboxed redirect created a file outside the jail: %v", err)
	}
}

// panickySpec registers a command whose implementation and fusion
// kernel both panic — the stand-in for a buggy user extension.
func panickySpec() CommandSpec {
	return CommandSpec{
		Name: "panicky",
		Run: func(args []string, stdin io.Reader, stdout io.Writer) error {
			io.Copy(io.Discard, stdin)
			panic("extension bug: nil map write")
		},
		Annotation: StdinStdout(ClassStateless),
		Kernel: func(args []string) (Kernel, bool) {
			return &panicKernel{}, true
		},
	}
}

type panicKernel struct{}

func (k *panicKernel) Apply(out, in []byte) []byte { panic("extension kernel bug") }
func (k *panicKernel) Finish(out []byte) []byte    { return out }
func (k *panicKernel) Status() error               { return nil }

// TestPanickingExtensionFailsOnlyItsJob is the containment acceptance
// test: a user extension that panics fails its own job with a typed,
// stack-carrying error while concurrent jobs in the same session (and
// the process) are untouched.
func TestPanickingExtensionFailsOnlyItsJob(t *testing.T) {
	before := Panics().Count
	s := NewSession(DefaultOptions(4))
	if err := s.Register(panickySpec()); err != nil {
		t.Fatal(err)
	}

	const rounds = 4
	var wg sync.WaitGroup
	healthy := make([]string, rounds)
	var panicErrs [rounds]error
	for i := 0; i < rounds; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := s.Start(context.Background(), "seq 100 | panicky | wc -l",
				JobIO{Stdin: strings.NewReader(""), Stdout: io.Discard})
			if err != nil {
				panicErrs[i] = err
				return
			}
			_, panicErrs[i] = job.Wait()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out bytes.Buffer
			job, err := s.Start(context.Background(), "seq 1000 | grep 7 | wc -l", JobIO{Stdout: &out})
			if err != nil {
				t.Error(err)
				return
			}
			if code, err := job.Wait(); code != 0 || err != nil {
				t.Errorf("healthy job round %d: code=%d err=%v", i, code, err)
			}
			healthy[i] = out.String()
		}()
	}
	wg.Wait()

	for i, err := range panicErrs {
		if err == nil {
			t.Fatalf("round %d: panicking job reported success", i)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("round %d: error does not identify the panic: %v", i, err)
		}
	}
	for i, out := range healthy {
		if out != healthy[0] {
			t.Errorf("healthy job output diverged in round %d: %q vs %q", i, out, healthy[0])
		}
	}
	if strings.TrimSpace(healthy[0]) != "271" {
		t.Errorf("healthy output = %q, want 271 (numbers 1..1000 containing a 7)", healthy[0])
	}

	st := Panics()
	if st.Count < before+int64(rounds) {
		t.Errorf("panic ring recorded %d, want >= %d", st.Count-before, rounds)
	}
	found := false
	for _, rec := range st.Recent {
		if strings.Contains(rec.Value, "extension") && rec.Stack != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no extension panic with a stack in the ring: %+v", st.Recent)
	}
}
