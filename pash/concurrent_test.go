package pash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// concurrencyCorpus writes a small per-test data file and returns its
// directory plus the scripts the tenants run. Every script is
// deterministic, so concurrent outputs must be byte-identical to
// sequential ones.
func concurrencyCorpus(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	var sb strings.Builder
	words := []string{"alpha", "beta", "gamma", "delta", "omega", "sigma"}
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%s %s %d\n", words[i%len(words)], words[(i*5+1)%len(words)], i%97)
	}
	if err := os.WriteFile(filepath.Join(dir, "data.txt"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	scripts := []string{
		"cut -d ' ' -f1 data.txt | sort | uniq -c | sort -rn",
		"grep alpha data.txt | wc -l",
		"for i in 1 2 3 4; do grep gamma data.txt | cut -d ' ' -f2 | sort -u; done",
		"tr a-z A-Z < data.txt | grep ALPHA | head -n 5",
		"sort data.txt | uniq | wc",
		"awk '{print $3}' data.txt | sort -n | tail -n 3",
		"sed 's/alpha/ALPHA/' data.txt | grep ALPHA | wc -l",
		"cat data.txt data.txt | sort | uniq -c | head -n 4",
	}
	return dir, scripts
}

// TestConcurrentSessionRunsSharedScheduler is the acceptance race test:
// many concurrent Session.Run calls — both one shared session and
// separate sessions — multiplexed over one shared scheduler must
// produce byte-identical outputs to sequential runs.
func TestConcurrentSessionRunsSharedScheduler(t *testing.T) {
	dir, scripts := concurrencyCorpus(t)

	// Sequential reference outputs, no scheduler, fresh session each.
	want := make([]string, len(scripts))
	for i, src := range scripts {
		s := NewSession(DefaultOptions(4))
		s.Dir = dir
		var out bytes.Buffer
		if code, err := s.Run(context.Background(), src, strings.NewReader(""), &out, os.Stderr); err != nil || code != 0 {
			t.Fatalf("sequential %q: code=%d err=%v", src, code, err)
		}
		want[i] = out.String()
	}

	sched := NewScheduler(4)
	shared := NewSession(DefaultOptions(4))
	shared.Dir = dir
	shared.UseScheduler(sched)

	const rounds = 3 // 8 scripts x 3 rounds = 24 concurrent runs
	var wg sync.WaitGroup
	errs := make(chan error, len(scripts)*rounds*2)
	for r := 0; r < rounds; r++ {
		for i, src := range scripts {
			// Half the tenants share one session (one plan cache), half
			// bring their own session to the shared scheduler.
			sess := shared
			if (r+i)%2 == 1 {
				sess = NewSession(DefaultOptions(4))
				sess.Dir = dir
				sess.UseScheduler(sched)
			}
			wg.Add(1)
			go func(i int, src string, sess *Session) {
				defer wg.Done()
				var out bytes.Buffer
				code, err := sess.Run(context.Background(), src, strings.NewReader(""), &out, os.Stderr)
				if err != nil || code != 0 {
					errs <- fmt.Errorf("concurrent %q: code=%d err=%v", src, code, err)
					return
				}
				if out.String() != want[i] {
					errs <- fmt.Errorf("concurrent %q diverged:\n--- want:\n%s--- got:\n%s", src, want[i], out.String())
				}
			}(i, src, sess)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := sched.Stats()
	if st.Admitted < int64(len(scripts)*rounds) {
		t.Errorf("scheduler admitted %d scripts, want >= %d", st.Admitted, len(scripts)*rounds)
	}
	if st.ActiveScripts != 0 || st.TokensInUse != 0 {
		t.Errorf("scheduler leaked state: %+v", st)
	}
	cs := shared.PlanCacheStats()
	if cs.Hits == 0 {
		t.Errorf("shared session saw no plan-cache hits across rounds: %+v", cs)
	}
}

// TestConcurrentRegistrationDuringRuns exercises the copy-on-write
// extension path: registering commands and annotations while scripts
// run must not corrupt in-flight executions.
func TestConcurrentRegistrationDuringRuns(t *testing.T) {
	dir, _ := concurrencyCorpus(t)
	s := NewSession(DefaultOptions(2))
	s.Dir = dir

	stop := make(chan struct{})
	registrarDone := make(chan struct{})
	go func() {
		defer close(registrarDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.RegisterCommand(fmt.Sprintf("custom%d", i%4),
				func(args []string, stdin io.Reader, stdout io.Writer) error { return nil })
			if err := s.RegisterAnnotation(fmt.Sprintf("custom%d { | _ => (S, [stdin], [stdout]) }", i%4)); err != nil {
				t.Errorf("register annotation: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out bytes.Buffer
			code, err := s.Run(context.Background(), "grep beta data.txt | wc -l", strings.NewReader(""), &out, os.Stderr)
			if err != nil || code != 0 {
				t.Errorf("run during registration: code=%d err=%v", code, err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-registrarDone

	// The registered command is usable afterward.
	var out bytes.Buffer
	code, err := s.Run(context.Background(), "custom0", strings.NewReader(""), &out, os.Stderr)
	if err != nil || code != 0 {
		t.Errorf("registered command: code=%d err=%v", code, err)
	}
}
