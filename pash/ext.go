package pash

// This file is the typed extension API: the first-class path for making
// a user command a full citizen of the parallelizing compiler. The
// paper's claim (§3.2) is that a light-touch annotation suffices for
// arbitrary commands to join automatic parallelization; CommandSpec is
// that annotation in typed form — class and I/O shape via a builder
// (mirroring the DSL's records without exposing internals), plus the
// two runtime hooks the string DSL cannot express: a KernelFactory
// (stage fusion, framed round-robin splitting) and an AggregatorSpec
// (map/aggregate parallelization, fan-in aggregation trees). A command
// registered with all three parallelizes exactly like a builtin.

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/core"
)

// Class is a parallelizability class (§3.1): how much the compiler may
// assume about a command when parallelizing it.
type Class = annot.Class

// Parallelizability classes.
const (
	// ClassStateless commands map/filter individual lines with no state
	// across them; replicas' outputs concatenate. They round-robin
	// split, fuse, and replicate freely.
	ClassStateless = annot.Stateless
	// ClassPure commands are functionally pure but keep state across
	// the whole pass (sort, wc). They parallelize only with an
	// AggregatorSpec.
	ClassPure = annot.Pure
	// ClassNonParallelizable commands are pure but not data-parallel on
	// one input (sha1sum).
	ClassNonParallelizable = annot.NonParallelizable
	// ClassSideEffectful commands touch the environment; never
	// parallelized. This is the conservative default for unannotated
	// commands.
	ClassSideEffectful = annot.SideEffectful
)

// Pred is a predicate over an invocation's option multiset, used to
// guard annotation clauses ("with -c this command is pure"). The zero
// Pred matches every invocation.
type Pred struct{ p annot.Pred }

// Opt matches when the option is present (clustered short flags are
// split, so -rn registers both -r and -n).
func Opt(name string) Pred { return Pred{&annot.HasOpt{Opt: name}} }

// OptEq matches when the option is present with exactly this value.
func OptEq(name, value string) Pred { return Pred{&annot.ValueEq{Opt: name, Val: value}} }

// Not negates a predicate. Negating the zero ("match everything")
// predicate yields one that matches nothing.
func Not(p Pred) Pred {
	if p.p == nil {
		// No invocation carries this impossible option name.
		return Pred{&annot.HasOpt{Opt: "\x00never"}}
	}
	return Pred{&annot.Not{P: p.p}}
}

// AllOf conjoins predicates; with no arguments it matches everything.
func AllOf(ps ...Pred) Pred {
	var acc annot.Pred
	for _, p := range ps {
		if p.p == nil {
			continue
		}
		if acc == nil {
			acc = p.p
		} else {
			acc = &annot.And{L: acc, R: p.p}
		}
	}
	return Pred{acc}
}

// AnyOf disjoins predicates; with no arguments it matches everything.
func AnyOf(ps ...Pred) Pred {
	var acc annot.Pred
	for _, p := range ps {
		if p.p == nil {
			return Pred{}
		}
		if acc == nil {
			acc = p.p
		} else {
			acc = &annot.Or{L: acc, R: p.p}
		}
	}
	return Pred{acc}
}

// IO names one abstract input or output position of a command: standard
// input, standard output, or operand positions (non-option arguments).
type IO struct{ ref annot.IORef }

// Stdin refers to the command's standard input.
func Stdin() IO { return IO{annot.IORef{Kind: annot.IOStdin}} }

// Stdout refers to the command's standard output.
func Stdout() IO { return IO{annot.IORef{Kind: annot.IOStdout}} }

// Arg refers to the i-th operand (0-based, counting only non-option
// arguments) as a file stream.
func Arg(i int) IO { return IO{annot.IORef{Kind: annot.IOArg, Lo: i}} }

// Args refers to operands lo..hi (exclusive; hi < 0 means "to the
// end") as file streams in order.
func Args(lo, hi int) IO { return IO{annot.IORef{Kind: annot.IOArgs, Lo: lo, Hi: hi}} }

// Annotation is the builder-style form of an annotation record: an
// ordered list of clauses, each guarded by an option predicate, giving
// the parallelizability class and I/O shape of matching invocations.
// The first matching clause wins; invocations matching no clause fall
// back to the conservative side-effectful default.
type Annotation struct {
	valueOpts []string
	clauses   []annotClause
}

type annotClause struct {
	pred    Pred
	class   Class
	in, out []IO
}

// NewAnnotation returns an empty annotation builder.
func NewAnnotation() *Annotation { return &Annotation{} }

// StdinStdout is the common whole-command annotation: every invocation
// has the given class, reads standard input, writes standard output —
// the typed form of `cmd { | _ => (C, [stdin], [stdout]) }`.
func StdinStdout(class Class) *Annotation {
	return NewAnnotation().Otherwise(class, []IO{Stdin()}, []IO{Stdout()})
}

// ValueOpts declares options that consume the following argument as
// their value (cut's -d, head's -n), so option parsing can separate
// them from operands.
func (a *Annotation) ValueOpts(opts ...string) *Annotation {
	a.valueOpts = append(a.valueOpts, opts...)
	return a
}

// When appends a guarded clause: invocations matching pred get the
// class and I/O shape. Clauses are tried in the order added.
func (a *Annotation) When(pred Pred, class Class, inputs, outputs []IO) *Annotation {
	a.clauses = append(a.clauses, annotClause{pred: pred, class: class, in: inputs, out: outputs})
	return a
}

// Otherwise appends an unguarded clause (the `_` arm): it matches every
// invocation that reached it, so it should come last.
func (a *Annotation) Otherwise(class Class, inputs, outputs []IO) *Annotation {
	return a.When(Pred{}, class, inputs, outputs)
}

// record compiles the builder to an internal annotation record — the
// typed construction path beside the DSL parser.
func (a *Annotation) record(name string) (*annot.Record, error) {
	if len(a.clauses) == 0 {
		return nil, fmt.Errorf("pash: annotation for %q has no clauses", name)
	}
	rec := &annot.Record{Name: name, ValueOpts: map[string]bool{}}
	for _, o := range a.valueOpts {
		rec.ValueOpts[o] = true
	}
	for _, cl := range a.clauses {
		ac := annot.Clause{Pred: cl.pred.p, Assign: annot.Assignment{Class: cl.class}}
		for _, r := range cl.in {
			ac.Assign.Inputs = append(ac.Assign.Inputs, r.ref)
		}
		for _, r := range cl.out {
			ac.Assign.Outputs = append(ac.Assign.Outputs, r.ref)
		}
		rec.Clauses = append(rec.Clauses, ac)
	}
	return rec, nil
}

// Kernel is the per-block form of a stateless command: the contract
// that lets it join fused chains and framed round-robin regions.
//
// Apply appends the transform of one input block to out and returns the
// grown slice; it must not retain in. Blocks arrive in stream order but
// are not newline-aligned — kernels operating on lines must carry
// partial lines across calls. Finish appends any end-of-stream output
// and resets the kernel to its initial state (one kernel value
// processes a sequence of independent streams under the framed
// protocol: one stream per chunk). Status reports the accumulated exit
// status across all streams; nil means 0.
type Kernel interface {
	Apply(out, in []byte) []byte
	Finish(out []byte) []byte
	Status() error
}

// KernelFactory builds the kernel for one invocation of the command, or
// reports false when this flag combination has no kernel form (the
// command then runs unfused, which is always safe).
type KernelFactory func(args []string) (Kernel, bool)

// AggregatorFunc is an aggregate implementation: it merges the partial
// outputs of parallel map instances back into the sequential command's
// output. args carries the aggregate's configuration arguments (its
// flags — stream operands are already stripped); inputs are the partial
// result streams in original chunk order.
type AggregatorFunc func(args []string, inputs []io.Reader, stdout io.Writer) error

// AggregatorSpec supplies the (map, aggregate) pair that parallelizes a
// pure command (§3.2 Custom Aggregators): running the map on every
// input chunk and the aggregate over the map outputs must reproduce the
// original command.
type AggregatorSpec struct {
	// Agg is the aggregate implementation, registered under AggName.
	// Nil means AggName refers to a command that already exists in the
	// session (e.g. the command aggregates itself with different flags,
	// like sort / sort -m).
	Agg AggregatorFunc
	// AggName is the aggregate command's name (required).
	AggName string
	// AggArgs configures the aggregate; nil reuses the invocation's own
	// flags (pass an empty non-nil slice for "no arguments").
	AggArgs []string
	// MapName is the per-chunk map command; "" means the command maps
	// itself (each chunk runs the original invocation).
	MapName string
	// MapArgs configures the map; nil reuses the invocation's flags.
	MapArgs []string
	// Associative marks aggregates whose output can be re-aggregated:
	// agg(agg(a)·agg(b)) == agg(a·b). Only associative aggregates are
	// arranged into fan-in aggregation trees at high widths; the
	// conservative default keeps the flat n-ary stage.
	Associative bool
	// StopsEarly marks prefix-takers (head-like commands) so the
	// planner never plants a draining barrier split in front of them.
	StopsEarly bool
}

// CommandSpec is a complete typed registration: implementation,
// classification, and the optional hooks that admit the command to the
// planner's fast paths. Zero hooks is always sound — the command runs,
// classified by Annotation (or conservatively when nil).
type CommandSpec struct {
	// Name is the command name scripts invoke (required).
	Name string
	// Run is the implementation (required).
	Run CommandFunc
	// Annotation classifies invocations. Nil leaves the name
	// unannotated: the conservative side-effectful default, never
	// parallelized. Registering a builtin name with a nil Annotation
	// also clears the builtin's annotation — user registrations shadow
	// builtins completely (see Session.Register).
	Annotation *Annotation
	// Kernel, when set, gives stateless invocations a per-block form:
	// they join fused chains and framed round-robin split regions.
	Kernel KernelFactory
	// Aggregator, when set, parallelizes pure invocations via
	// map + aggregate (and aggregation trees when Associative).
	Aggregator *AggregatorSpec
}

// Register installs a typed command spec into the session, making the
// command a first-class citizen of the parallelizing compiler: it
// classifies through Annotation, round-robin splits and fuses through
// Kernel, and joins fan-in aggregation trees through Aggregator.
//
// Shadowing precedence: a user registration wins over a builtin of the
// same name *completely* within this session. The builtin's
// implementation, kernel, aggregator pair, and annotation record all
// stop applying (they describe the replaced command, not the user's);
// only what the spec itself supplies is used. Re-registration bumps the
// session's registry generation, so every cached plan that mentioned
// the old registration is invalidated.
func (s *Session) Register(spec CommandSpec) error {
	if spec.Name == "" {
		return errors.New("pash: CommandSpec.Name is required")
	}
	if spec.Run == nil {
		return errors.New("pash: CommandSpec.Run is required")
	}
	if spec.Aggregator != nil {
		if spec.Aggregator.AggName == "" {
			return errors.New("pash: AggregatorSpec.AggName is required")
		}
		if spec.Aggregator.Agg != nil && spec.Aggregator.AggName == spec.Name {
			// Registering the aggregate implementation under the
			// command's own name would overwrite Run. Self-aggregation
			// (sort / sort -m style) is spelled with a nil Agg.
			return errors.New("pash: AggregatorSpec.AggName must differ from CommandSpec.Name when Agg is supplied (use a nil Agg for self-aggregating commands)")
		}
	}
	var rec *annot.Record
	if spec.Annotation != nil {
		r, err := spec.Annotation.record(spec.Name)
		if err != nil {
			return err
		}
		rec = r
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cc := *s.compiler
	cc.Cmds = cc.Cmds.Clone()
	cc.Cmds.Register(spec.Name, wrapCommand(spec.Run))
	if spec.Kernel != nil {
		f := spec.Kernel
		cc.Cmds.RegisterKernel(spec.Name, func(args []string) (commands.Kernel, bool) {
			k, ok := f(args)
			if !ok || k == nil {
				return nil, false
			}
			return k, true
		})
	}
	if spec.Aggregator != nil {
		ag := *spec.Aggregator
		if ag.Agg != nil {
			cc.Cmds.Register(ag.AggName, wrapAggregator(ag.Agg))
		} else if _, ok := cc.Cmds.Lookup(ag.AggName); !ok {
			// A nil Agg promises AggName already exists; surface the
			// broken promise here rather than as command-not-found the
			// first time a script parallelizes.
			return fmt.Errorf("pash: AggregatorSpec.AggName %q names no registered command (supply Agg or register it first)", ag.AggName)
		}
		cc.Cmds.RegisterAgg(spec.Name, commands.AggSpec{
			MapName:     ag.MapName,
			MapArgs:     ag.MapArgs,
			AggName:     ag.AggName,
			AggArgs:     ag.AggArgs,
			Associative: ag.Associative,
			StopsEarly:  ag.StopsEarly,
		})
	}
	if err := s.isolateAnnotLocked(&cc); err != nil {
		return err
	}
	if rec != nil {
		cc.Annot.Add(rec)
		s.userAnnot[spec.Name] = true
	} else if !s.userAnnot[spec.Name] {
		// Shadowing a builtin name without supplying an annotation:
		// drop the builtin's record rather than let its
		// parallelizability claims apply to an arbitrary replacement.
		cc.Annot.Remove(spec.Name)
	}
	if spec.Aggregator != nil && spec.Aggregator.Agg != nil && !s.userAnnot[spec.Aggregator.AggName] {
		// The aggregate implementation shadows its name too: a builtin
		// annotation must not keep classifying (and parallelizing) a
		// name that now runs the user's aggregate wrapper.
		cc.Annot.Remove(spec.Aggregator.AggName)
	}
	cc.Plans = core.NewPlanCache(0)
	s.compiler = &cc
	return nil
}

// wrapCommand adapts the public CommandFunc to the internal command
// contract.
func wrapCommand(fn CommandFunc) commands.Func {
	return func(ctx *commands.Context) error {
		return fn(ctx.Args, ctx.Stdin, ctx.Stdout)
	}
}

// wrapAggregator adapts an AggregatorFunc: aggregate nodes receive
// their configuration arguments followed by one operand per input
// stream (in-process, those operands are virtual edge names); the
// wrapper opens the streams and strips them from argv.
func wrapAggregator(fn AggregatorFunc) commands.Func {
	return func(ctx *commands.Context) error {
		var flags, streams []string
		for _, a := range ctx.Args {
			if a == "-" || strings.HasPrefix(a, commands.VirtualStreamPrefix) {
				streams = append(streams, a)
			} else {
				flags = append(flags, a)
			}
		}
		readers, cleanup, err := ctx.OpenInputs(streams)
		if err != nil {
			return err
		}
		defer cleanup()
		return fn(flags, readers, ctx.Stdout)
	}
}
