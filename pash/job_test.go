package pash

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestJobStartWaitStats(t *testing.T) {
	s := NewSession(DefaultOptions(4))
	var out bytes.Buffer
	j, err := s.Start(context.Background(), "grep -c a | tr -d '\\n'",
		JobIO{Stdin: strings.NewReader("a\nb\nab\n"), Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() <= 0 {
		t.Errorf("job ID = %d", j.ID())
	}
	code, err := j.Wait()
	if err != nil || code != 0 {
		t.Fatalf("wait: code=%d err=%v", code, err)
	}
	if out.String() != "2" {
		t.Errorf("output = %q", out.String())
	}
	st := j.Stats()
	if st.Running || st.ExitCode != 0 || st.Interp.Regions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if j.Running() {
		t.Error("finished job reports running")
	}
	// Wait is idempotent.
	if code, err := j.Wait(); err != nil || code != 0 {
		t.Errorf("second wait: code=%d err=%v", code, err)
	}
}

func TestJobCancel(t *testing.T) {
	s := NewSession(SequentialOptions())
	j, err := s.Start(context.Background(), "while true; do true; done", JobIO{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		j.Cancel()
		close(done)
	}()
	code, werr := j.Wait()
	<-done
	if code != 130 {
		t.Errorf("cancelled job exit = %d, want 130", code)
	}
	if !errors.Is(werr, context.Canceled) {
		t.Errorf("cancelled job err = %v", werr)
	}
}

// TestJobCancelDuringAdmission: cancellation while queued behind a
// saturated scheduler reports the same 130 contract as mid-script
// cancellation.
func TestJobCancelDuringAdmission(t *testing.T) {
	sched := NewScheduler(1)
	sched.SetMaxScripts(1)
	s := NewSession(SequentialOptions())
	s.UseScheduler(sched)

	// Occupy the single admission slot with a job blocked on stdin.
	pr, pw := io.Pipe()
	j1, err := s.Start(context.Background(), "wc -l", JobIO{Stdin: pr})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for sched.Stats().ActiveScripts != 1 {
		select {
		case <-deadline:
			t.Fatal("first job never admitted")
		case <-time.After(time.Millisecond):
		}
	}

	j2, err := s.Start(context.Background(), "echo hi", JobIO{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let it block in Admit
	j2.Cancel()
	code, werr := j2.Wait()
	if code != 130 || !errors.Is(werr, context.Canceled) {
		t.Errorf("admission-cancelled job: code=%d err=%v", code, werr)
	}

	pw.Close()
	if code, err := j1.Wait(); err != nil || code != 0 {
		t.Errorf("first job: code=%d err=%v", code, err)
	}
}

func TestJobContextCancellation(t *testing.T) {
	s := NewSession(SequentialOptions())
	ctx, cancel := context.WithCancel(context.Background())
	j, err := s.Start(ctx, "while true; do true; done", JobIO{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	code, werr := j.Wait()
	if code != 130 || !errors.Is(werr, context.Canceled) {
		t.Errorf("ctx-cancelled job: code=%d err=%v", code, werr)
	}
}

func TestSessionJobsLive(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	// The script blocks reading stdin until the pipe closes, keeping
	// the job observable in Jobs().
	pr, pw := io.Pipe()
	var out bytes.Buffer
	j, err := s.Start(context.Background(), "wc -l", JobIO{Stdin: pr, Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		jobs := s.Jobs()
		if len(jobs) == 1 && jobs[0].ID == j.ID() && jobs[0].Running {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("running job never appeared in Jobs(): %+v", jobs)
		case <-time.After(time.Millisecond):
		}
	}
	pw.Write([]byte("x\ny\n"))
	pw.Close()
	if code, err := j.Wait(); err != nil || code != 0 {
		t.Fatalf("wait: code=%d err=%v", code, err)
	}
	if got := strings.TrimSpace(out.String()); got != "2" {
		t.Errorf("output = %q", got)
	}
	if jobs := s.Jobs(); len(jobs) != 0 {
		t.Errorf("finished job still tracked: %+v", jobs)
	}
}

func TestStartParseErrorSynchronous(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	if _, err := s.Start(context.Background(), "for do done (", JobIO{}); err == nil {
		t.Error("parse error not reported by Start")
	}
	// The Run wrapper keeps the historical 127 status for parse errors.
	code, err := s.Run(context.Background(), "for do done (", nil, io.Discard, io.Discard)
	if err == nil || code != 127 {
		t.Errorf("Run on bad syntax: code=%d err=%v", code, err)
	}
}

func TestStartWithOptions(t *testing.T) {
	s := NewSession(DefaultOptions(8))
	input := strings.Repeat("b\na\nc\n", 400)
	run := func(opts ...StartOption) string {
		var out bytes.Buffer
		j, err := s.Start(context.Background(), "sort | uniq -c",
			JobIO{Stdin: strings.NewReader(input), Stdout: &out}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if code, err := j.Wait(); err != nil || code != 0 {
			t.Fatalf("code=%d err=%v", code, err)
		}
		return out.String()
	}
	def := run()
	seq := run(WithOptions(SequentialOptions()))
	if def != seq {
		t.Errorf("per-job width override diverged:\n%q\nvs\n%q", def, seq)
	}
	// The override is per-job: the session still plans at width 8.
	if got := s.Options().Width; got != 8 {
		t.Errorf("session width mutated by WithOptions: %d", got)
	}
}
