// Package pash is the public API of the PaSh reproduction: a shell that
// parallelizes POSIX shell scripts through dataflow-graph transformations
// and UNIX-aware runtime primitives (EuroSys 2021).
//
// Typical use:
//
//	s := pash.NewSession(pash.DefaultOptions(8))
//	code, err := s.Run(ctx, "cat big.txt | grep needle | sort | uniq -c",
//	        os.Stdin, os.Stdout, os.Stderr)
//
// Command developers extend the system with annotation records (§3.2):
//
//	s.RegisterAnnotation(`mycmd { | _ => (S, [stdin], [stdout]) }`)
//	s.RegisterCommand("mycmd", myImpl)
package pash

import (
	"context"
	"io"
	"sync"

	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/runtime"
)

// Options selects parallelism width and runtime primitives; it mirrors
// the paper's evaluation configurations (Fig. 7).
type Options = core.Options

// Plan is an ahead-of-time compiled script; Emit renders it as an
// explicit parallel POSIX script (Fig. 3).
type Plan = core.Plan

// Eager-mode constants for Options.Eager.
const (
	EagerNone     = dfg.EagerNone
	EagerBlocking = dfg.EagerBlocking
	EagerFull     = dfg.EagerFull
)

// DefaultOptions returns the paper's best configuration ("Par + Split")
// at the given width.
func DefaultOptions(width int) Options { return core.DefaultOptions(width) }

// SequentialOptions disables parallelization entirely.
func SequentialOptions() Options { return Options{Width: 1} }

// Scheduler is the shared machine scheduler: script admission slots
// plus a width-token pool that concurrent executions draw from. Build
// one with NewScheduler and attach it to any number of sessions.
type Scheduler = runtime.Scheduler

// SchedulerStats re-exports the scheduler metrics snapshot.
type SchedulerStats = runtime.SchedulerStats

// PlanCacheStats re-exports the plan-cache metrics snapshot.
type PlanCacheStats = core.PlanCacheStats

// NewScheduler builds a shared scheduler; tokens <= 0 sizes the worker
// pool to the machine.
func NewScheduler(tokens int) *Scheduler { return runtime.NewScheduler(tokens) }

// Session holds a compiler configuration plus the execution environment.
// Sessions are safe for concurrent Run calls: each run takes an
// immutable snapshot of the compiler, and extension methods
// (RegisterAnnotation, RegisterCommand, SetOptions, UseScheduler)
// replace registries copy-on-write instead of mutating state a running
// script may be reading. Dir and Vars are plain fields — set them
// before sharing the session.
type Session struct {
	mu       sync.RWMutex
	compiler *core.Compiler

	// Dir is the working directory for file access ("" = process cwd).
	Dir string
	// Vars seeds the shell variable environment (e.g. PASH_CURL_ROOT).
	Vars map[string]string

	isolatedAnnot bool
}

// NewSession builds a session with the standard command and annotation
// libraries.
func NewSession(opts Options) *Session {
	return &Session{compiler: core.NewCompiler(opts)}
}

// snapshot returns an immutable per-run view of the compiler: the
// struct is copied, so concurrent mutators swap a fresh one in rather
// than changing what this run sees. The plan cache and scheduler
// pointers are shared deliberately — they are the cross-run state.
func (s *Session) snapshot() *core.Compiler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cc := *s.compiler
	return &cc
}

// mutate clones the compiler struct, applies fn, and swaps the result
// in. In-flight runs keep their snapshot; new runs see the update.
func (s *Session) mutate(fn func(c *core.Compiler)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := *s.compiler
	fn(&cc)
	s.compiler = &cc
}

// Options returns the session's compiler options.
func (s *Session) Options() Options { return s.snapshot().Opts }

// SetOptions replaces the compiler options (e.g. to sweep widths).
func (s *Session) SetOptions(opts Options) {
	s.mutate(func(c *core.Compiler) { c.Opts = opts })
}

// UseScheduler attaches a shared scheduler: Run calls pass admission
// control before starting, and each region's effective width is granted
// from the scheduler's token pool. Pass nil to detach.
func (s *Session) UseScheduler(sched *Scheduler) {
	s.mutate(func(c *core.Compiler) { c.Sched = sched })
}

// PlanCacheStats snapshots the session's plan-cache counters.
func (s *Session) PlanCacheStats() PlanCacheStats {
	c := s.snapshot()
	if c.Plans == nil {
		return PlanCacheStats{}
	}
	return c.Plans.Stats()
}

// RegisterAnnotation adds or replaces an annotation record in the
// session's registry. The registry is cloned copy-on-write and the plan
// cache reset, so cached plans never survive a classification change.
func (s *Session) RegisterAnnotation(record string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := *s.compiler
	if !s.isolatedAnnot {
		reg, err := annot.NewStdRegistry()
		if err != nil {
			return err
		}
		cc.Annot = reg
		s.isolatedAnnot = true
	} else {
		cc.Annot = cc.Annot.Clone()
	}
	if err := cc.Annot.Register(record); err != nil {
		return err
	}
	cc.Plans = core.NewPlanCache(0)
	s.compiler = &cc
	return nil
}

// CommandFunc is a user-supplied command implementation: it reads stdin,
// writes stdout, and returns an error (nil = exit 0).
type CommandFunc func(args []string, stdin io.Reader, stdout io.Writer) error

// RegisterCommand installs a custom command under the given name,
// making it usable from scripts run by this session. The command
// registry is cloned copy-on-write and the plan cache reset (a name
// that previously missed lookup may now resolve).
func (s *Session) RegisterCommand(name string, fn CommandFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := *s.compiler
	cc.Cmds = cc.Cmds.Clone()
	cc.Cmds.Register(name, func(ctx *commands.Context) error {
		return fn(ctx.Args, ctx.Stdin, ctx.Stdout)
	})
	cc.Plans = core.NewPlanCache(0)
	s.compiler = &cc
}

// Run parses and executes a script with PaSh's parallelizing
// interpreter, returning the script's exit status. When a scheduler is
// attached, the call blocks in admission until the machine has a free
// script slot.
func (s *Session) Run(ctx context.Context, src string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	c := s.snapshot()
	if c.Sched != nil {
		release, err := c.Sched.Admit(ctx)
		if err != nil {
			return 1, err
		}
		defer release()
	}
	return core.Run(ctx, c, src, s.Dir, s.Vars,
		runtime.StdIO{Stdin: stdin, Stdout: stdout, Stderr: stderr})
}

// RunStats executes like Run but also returns region compilation
// statistics (regions found, node counts, plan-cache hits/misses —
// Tab. 2's metrics).
func (s *Session) RunStats(ctx context.Context, src string, stdin io.Reader, stdout, stderr io.Writer) (int, core.InterpStats, error) {
	c := s.snapshot()
	if c.Sched != nil {
		release, err := c.Sched.Admit(ctx)
		if err != nil {
			return 1, core.InterpStats{}, err
		}
		defer release()
	}
	in := core.NewInterp(c, s.Dir, s.Vars,
		runtime.StdIO{Stdin: stdin, Stdout: stdout, Stderr: stderr})
	code, err := in.RunScript(ctx, src)
	return code, in.Stats, err
}

// Compile builds an ahead-of-time plan; static regions are parallelized,
// dynamic ones preserved verbatim.
func (s *Session) Compile(src string) (*Plan, error) {
	return s.snapshot().Plan(src)
}

// Table1 re-exports the parallelizability study (§3.1).
func Table1() []annot.Table1Row { return annot.Table1() }

// WriteTable1 renders the study in the paper's Table 1 layout.
func WriteTable1(w io.Writer) { annot.WriteTable1(w) }
