// Package pash is the public API of the PaSh reproduction: a shell that
// parallelizes POSIX shell scripts through dataflow-graph transformations
// and UNIX-aware runtime primitives (EuroSys 2021).
//
// Typical use:
//
//	s := pash.NewSession(pash.DefaultOptions(8))
//	code, err := s.Run(ctx, "cat big.txt | grep needle | sort | uniq -c",
//	        os.Stdin, os.Stdout, os.Stderr)
//
// Command developers extend the system with annotation records (§3.2):
//
//	s.RegisterAnnotation(`mycmd { | _ => (S, [stdin], [stdout]) }`)
//	s.RegisterCommand("mycmd", myImpl)
package pash

import (
	"context"
	"io"

	"repro/internal/annot"
	"repro/internal/commands"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/runtime"
)

// Options selects parallelism width and runtime primitives; it mirrors
// the paper's evaluation configurations (Fig. 7).
type Options = core.Options

// Plan is an ahead-of-time compiled script; Emit renders it as an
// explicit parallel POSIX script (Fig. 3).
type Plan = core.Plan

// Eager-mode constants for Options.Eager.
const (
	EagerNone     = dfg.EagerNone
	EagerBlocking = dfg.EagerBlocking
	EagerFull     = dfg.EagerFull
)

// DefaultOptions returns the paper's best configuration ("Par + Split")
// at the given width.
func DefaultOptions(width int) Options { return core.DefaultOptions(width) }

// SequentialOptions disables parallelization entirely.
func SequentialOptions() Options { return Options{Width: 1} }

// Session holds a compiler configuration plus the execution environment.
// Sessions are safe to reuse across scripts; methods that register
// extensions are not safe to call concurrently with Run.
type Session struct {
	compiler *core.Compiler
	// Dir is the working directory for file access ("" = process cwd).
	Dir string
	// Vars seeds the shell variable environment (e.g. PASH_CURL_ROOT).
	Vars map[string]string

	isolatedAnnot bool
	isolatedCmds  bool
}

// NewSession builds a session with the standard command and annotation
// libraries.
func NewSession(opts Options) *Session {
	return &Session{compiler: core.NewCompiler(opts)}
}

// Options returns the session's compiler options.
func (s *Session) Options() Options { return s.compiler.Opts }

// SetOptions replaces the compiler options (e.g. to sweep widths).
func (s *Session) SetOptions(opts Options) { s.compiler.Opts = opts }

// RegisterAnnotation adds or replaces an annotation record in the
// session's registry (isolated from other sessions on first use).
func (s *Session) RegisterAnnotation(record string) error {
	if !s.isolatedAnnot {
		reg, err := annot.NewStdRegistry()
		if err != nil {
			return err
		}
		s.compiler.Annot = reg
		s.isolatedAnnot = true
	}
	return s.compiler.Annot.Register(record)
}

// CommandFunc is a user-supplied command implementation: it reads stdin,
// writes stdout, and returns an error (nil = exit 0).
type CommandFunc func(args []string, stdin io.Reader, stdout io.Writer) error

// RegisterCommand installs a custom command under the given name,
// making it usable from scripts run by this session.
func (s *Session) RegisterCommand(name string, fn CommandFunc) {
	if !s.isolatedCmds {
		// The compiler's registry is freshly built per compiler, so it
		// is already session-local; just mark it.
		s.isolatedCmds = true
	}
	s.compiler.Cmds.Register(name, func(ctx *commands.Context) error {
		return fn(ctx.Args, ctx.Stdin, ctx.Stdout)
	})
}

// Run parses and executes a script with PaSh's parallelizing
// interpreter, returning the script's exit status.
func (s *Session) Run(ctx context.Context, src string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	return core.Run(ctx, s.compiler, src, s.Dir, s.Vars,
		runtime.StdIO{Stdin: stdin, Stdout: stdout, Stderr: stderr})
}

// RunStats executes like Run but also returns region compilation
// statistics (regions found, node counts — Tab. 2's metrics).
func (s *Session) RunStats(ctx context.Context, src string, stdin io.Reader, stdout, stderr io.Writer) (int, core.InterpStats, error) {
	in := core.NewInterp(s.compiler, s.Dir, s.Vars,
		runtime.StdIO{Stdin: stdin, Stdout: stdout, Stderr: stderr})
	code, err := in.RunScript(ctx, src)
	return code, in.Stats, err
}

// Compile builds an ahead-of-time plan; static regions are parallelized,
// dynamic ones preserved verbatim.
func (s *Session) Compile(src string) (*Plan, error) {
	return s.compiler.Plan(src)
}

// Table1 re-exports the parallelizability study (§3.1).
func Table1() []annot.Table1Row { return annot.Table1() }

// WriteTable1 renders the study in the paper's Table 1 layout.
func WriteTable1(w io.Writer) { annot.WriteTable1(w) }
