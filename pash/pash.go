// Package pash is the public API of the PaSh reproduction: a shell that
// parallelizes POSIX shell scripts through dataflow-graph transformations
// and UNIX-aware runtime primitives (EuroSys 2021).
//
// Typical use:
//
//	s := pash.NewSession(pash.DefaultOptions(8))
//	code, err := s.Run(ctx, "cat big.txt | grep needle | sort | uniq -c",
//	        os.Stdin, os.Stdout, os.Stderr)
//
// Long-running callers use the Job API instead of blocking Run: Start
// returns a handle with streaming stdio, cancellation, and live stats:
//
//	job, err := s.Start(ctx, script, pash.JobIO{Stdin: in, Stdout: out})
//	code, err := job.Wait()
//
// Command developers extend the system through the typed extension API
// (§3.2): a CommandSpec carries the implementation, a builder-style
// annotation (class, option predicates, I/O shape), and the optional
// kernel and aggregator hooks that make a user command parallelize
// exactly like a builtin — round-robin splits, fused chains, fan-in
// aggregation trees:
//
//	s.Register(pash.CommandSpec{
//	        Name:       "mycmd",
//	        Run:        myImpl,
//	        Annotation: pash.StdinStdout(pash.ClassStateless),
//	        Kernel:     myKernelFactory,
//	})
//
// The string-DSL shims (RegisterAnnotation, RegisterCommand) remain as
// thin wrappers over the same machinery.
package pash

import (
	"context"
	"io"
	"sync"

	"repro/internal/annot"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/dist"
	"repro/internal/runtime"
)

// Options selects parallelism width and runtime primitives; it mirrors
// the paper's evaluation configurations (Fig. 7).
type Options = core.Options

// Plan is an ahead-of-time compiled script; Emit renders it as an
// explicit parallel POSIX script (Fig. 3).
type Plan = core.Plan

// Eager-mode constants for Options.Eager.
const (
	EagerNone     = dfg.EagerNone
	EagerBlocking = dfg.EagerBlocking
	EagerFull     = dfg.EagerFull
)

// Split-mode constants for Options.SplitMode.
const (
	SplitAuto       = dfg.SplitAuto
	SplitGeneral    = dfg.SplitGeneral
	SplitRoundRobin = dfg.SplitRoundRobin
)

// DefaultOptions returns the paper's best configuration ("Par + Split")
// at the given width.
func DefaultOptions(width int) Options { return core.DefaultOptions(width) }

// SequentialOptions disables parallelization entirely.
func SequentialOptions() Options { return Options{Width: 1} }

// Scheduler is the shared machine scheduler: script admission slots
// plus a width-token pool that concurrent executions draw from. Build
// one with NewScheduler and attach it to any number of sessions.
type Scheduler = runtime.Scheduler

// SchedulerStats re-exports the scheduler metrics snapshot.
type SchedulerStats = runtime.SchedulerStats

// PlanCacheStats re-exports the plan-cache metrics snapshot.
type PlanCacheStats = core.PlanCacheStats

// NewScheduler builds a shared scheduler; tokens <= 0 sizes the worker
// pool to the machine.
func NewScheduler(tokens int) *Scheduler { return runtime.NewScheduler(tokens) }

// Session holds a compiler configuration plus the execution environment.
// Sessions are safe for concurrent Run calls: each run takes an
// immutable snapshot of the compiler, and extension methods
// (RegisterAnnotation, RegisterCommand, SetOptions, UseScheduler)
// replace registries copy-on-write instead of mutating state a running
// script may be reading. Dir and Vars are plain fields — set them
// before sharing the session.
type Session struct {
	mu       sync.RWMutex
	compiler *core.Compiler

	// Dir is the working directory for file access ("" = process cwd).
	Dir string
	// Vars seeds the shell variable environment (e.g. PASH_CURL_ROOT).
	Vars map[string]string

	isolatedAnnot bool
	// userAnnot names the commands whose annotation the user supplied
	// (via Register or RegisterAnnotation): shadowing a command never
	// clears a user-supplied record, only inherited builtin ones.
	userAnnot map[string]bool

	// jobsMu/jobs track the session's running jobs (see job.go).
	jobsMu sync.Mutex
	jobs   map[int64]*Job
}

// NewSession builds a session with the standard command and annotation
// libraries.
func NewSession(opts Options) *Session {
	return &Session{compiler: core.NewCompiler(opts), userAnnot: map[string]bool{}}
}

// snapshot returns an immutable per-run view of the compiler: the
// struct is copied, so concurrent mutators swap a fresh one in rather
// than changing what this run sees. The plan cache and scheduler
// pointers are shared deliberately — they are the cross-run state.
func (s *Session) snapshot() *core.Compiler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cc := *s.compiler
	return &cc
}

// mutate clones the compiler struct, applies fn, and swaps the result
// in. In-flight runs keep their snapshot; new runs see the update.
func (s *Session) mutate(fn func(c *core.Compiler)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := *s.compiler
	fn(&cc)
	s.compiler = &cc
}

// Options returns the session's compiler options.
func (s *Session) Options() Options { return s.snapshot().Opts }

// SetOptions replaces the compiler options (e.g. to sweep widths).
func (s *Session) SetOptions(opts Options) {
	s.mutate(func(c *core.Compiler) { c.Opts = opts })
}

// UseScheduler attaches a shared scheduler: Run calls pass admission
// control before starting, and each region's effective width is granted
// from the scheduler's token pool. Pass nil to detach.
func (s *Session) UseScheduler(sched *Scheduler) {
	s.mutate(func(c *core.Compiler) { c.Sched = sched })
}

// WorkerPool is the distributed data plane: a set of `pash-serve
// -worker` processes the session's plans shard across. Build one with
// NewWorkerPool and attach it with UseWorkers (or per-job with
// WithWorkers).
type WorkerPool = dist.Pool

// WorkerStats re-exports a worker's coordinator-side meter row.
type WorkerStats = dist.WorkerStats

// WorkerTransitions re-exports the pool's worker state-transition
// counters (down / rejoined / degraded / restored).
type WorkerTransitions = dist.Transitions

// ProberConfig re-exports the background health prober's tuning knobs.
type ProberConfig = dist.ProberConfig

// FaultInjector re-exports the dist fault-injection layer (dev/test
// only; see dist.ParseFaultProfile).
type FaultInjector = dist.Injector

// NewWorkerPool builds a pool over the given worker addresses
// ("host:port", "http://host:port", or "unix:/path/to.sock").
func NewWorkerPool(workers ...string) *WorkerPool { return dist.NewPool(workers...) }

// UseWorkers attaches a worker pool: parallelizable stateless chains in
// every subsequent run are shipped to pool workers as framed chunk
// streams (or file-range shards when the pool shares the session's
// filesystem), with automatic local failover when a worker dies
// mid-stream. Pass nil to detach. The plan cache keys on the pool's
// membership fingerprint, so attaching, detaching, or losing workers
// re-plans affected regions instead of serving stale shard maps.
func (s *Session) UseWorkers(pool *WorkerPool) {
	s.mutate(func(c *core.Compiler) {
		if pool == nil {
			c.Workers = nil
			return
		}
		c.Workers = pool
	})
}

// WorkerStats snapshots the attached pool's per-worker meter rows (nil
// without a pool).
func (s *Session) WorkerStats() []WorkerStats {
	c := s.snapshot()
	if c.Workers == nil {
		return nil
	}
	if p, ok := c.Workers.(*dist.Pool); ok {
		return p.Stats()
	}
	return nil
}

// PlanCacheStats snapshots the session's plan-cache counters.
func (s *Session) PlanCacheStats() PlanCacheStats {
	c := s.snapshot()
	if c.Plans == nil {
		return PlanCacheStats{}
	}
	return c.Plans.Stats()
}

// isolateAnnotLocked gives the pending compiler snapshot a private,
// mutable annotation registry: a fresh standard registry on first use,
// a copy-on-write clone afterward. Callers hold s.mu.
func (s *Session) isolateAnnotLocked(cc *core.Compiler) error {
	if !s.isolatedAnnot {
		reg, err := annot.NewStdRegistry()
		if err != nil {
			return err
		}
		cc.Annot = reg
		s.isolatedAnnot = true
		return nil
	}
	cc.Annot = cc.Annot.Clone()
	return nil
}

// RegisterAnnotation adds or replaces annotation records in the
// session's registry (the string-DSL shim over the typed construction
// path — see Session.Register for the typed form). The registry is
// cloned copy-on-write and the plan cache invalidated, so cached plans
// never survive a classification change.
func (s *Session) RegisterAnnotation(record string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := *s.compiler
	if err := s.isolateAnnotLocked(&cc); err != nil {
		return err
	}
	recs, err := cc.Annot.RegisterRecords(record)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		s.userAnnot[rec.Name] = true
	}
	cc.Plans = core.NewPlanCache(0)
	s.compiler = &cc
	return nil
}

// CommandFunc is a user-supplied command implementation: it reads stdin,
// writes stdout, and returns an error (nil = exit 0).
type CommandFunc func(args []string, stdin io.Reader, stdout io.Writer) error

// RegisterCommand installs a custom command under the given name — the
// implementation-only shim over the typed Session.Register. The user
// registration shadows any builtin of the same name completely
// (implementation, kernel, aggregator, and — unless the session has its
// own annotation for the name — the builtin's annotation record), and
// the plan cache is invalidated. It panics on an empty name or nil fn
// (programmer error; use Register for an error return).
func (s *Session) RegisterCommand(name string, fn CommandFunc) {
	if err := s.Register(CommandSpec{Name: name, Run: fn}); err != nil {
		panic("pash: RegisterCommand: " + err.Error())
	}
}

// Run parses and executes a script with PaSh's parallelizing
// interpreter, returning the script's exit status. It is Start + Wait:
// when a scheduler is attached, the call blocks in admission until the
// machine has a free script slot.
func (s *Session) Run(ctx context.Context, src string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	j, err := s.Start(ctx, src, JobIO{Stdin: stdin, Stdout: stdout, Stderr: stderr})
	if err != nil {
		return 127, err
	}
	return j.Wait()
}

// RunStats executes like Run but also returns region compilation
// statistics (regions found, node counts, plan-cache hits/misses —
// Tab. 2's metrics).
func (s *Session) RunStats(ctx context.Context, src string, stdin io.Reader, stdout, stderr io.Writer) (int, core.InterpStats, error) {
	j, err := s.Start(ctx, src, JobIO{Stdin: stdin, Stdout: stdout, Stderr: stderr})
	if err != nil {
		return 127, core.InterpStats{}, err
	}
	code, rerr := j.Wait()
	return code, j.Stats().Interp, rerr
}

// Compile builds an ahead-of-time plan for emission; static regions are
// parallelized under emission constraints (barrier splits, no fusion),
// dynamic ones preserved verbatim.
func (s *Session) Compile(src string) (*Plan, error) {
	return s.snapshot().Plan(src)
}

// CompileExec builds the in-process execution view of a script: regions
// are optimized exactly as the interpreter would run them (stage
// fusion, streaming splits, aggregation trees). The result cannot be
// emitted as a shell script; inspect it with Plan.Dot.
func (s *Session) CompileExec(src string) (*Plan, error) {
	return s.snapshot().PlanExec(src)
}

// Table1 re-exports the parallelizability study (§3.1).
func Table1() []annot.Table1Row { return annot.Table1() }

// WriteTable1 renders the study in the paper's Table 1 layout.
func WriteTable1(w io.Writer) { annot.WriteTable1(w) }
