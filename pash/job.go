package pash

// The Job API: Session.Start launches a script and returns a handle
// immediately, with streaming stdin/stdout, cancellation, and live
// statistics. Run and RunStats are thin wrappers (Start + Wait). The
// pash-serve daemon is built on Jobs: one Job per request, cancelled
// with the request's context, surfaced live in /metrics.

import (
	"context"
	"errors"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/shell"
	"repro/internal/stream"
)

// JobIO binds a job's standard streams. A nil Stdin reads as empty; nil
// Stdout/Stderr discard. The job reads and writes these concurrently
// with the caller — pipes and sockets stream end to end.
type JobIO struct {
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
}

// InterpStats re-exports the interpreter's region-level compilation
// metrics (regions, node counts, plan-cache hits/misses).
type InterpStats = core.InterpStats

// StartOption customizes a single Start call without mutating the
// session.
type StartOption func(*startConfig)

type startConfig struct {
	opts *Options
	pool *WorkerPool
	// setPool distinguishes "no override" from WithWorkers(nil).
	setPool bool
	limits  JobLimits
	// admitted, when set, is a scheduler slot the caller already holds
	// for this job; the job releases it on completion instead of
	// admitting itself.
	admitted func()
	// stream, when set, runs the job as a streaming execution over an
	// unbounded source (WithStreamInput).
	stream *StreamConfig
	// tenant is the admission key for fair scheduling ("" = anonymous).
	tenant string
}

// WithOptions overrides the session's planning options for this job
// only (per-request width, split mode, fusion toggles). The plan cache
// keys on these options, so per-job overrides share the cache safely.
func WithOptions(o Options) StartOption {
	return func(c *startConfig) { oc := o; c.opts = &oc }
}

// WithWorkers overrides the session's worker pool for this job only:
// a non-nil pool distributes the job's regions across it, nil forces
// purely local execution. The plan cache keys on the pool fingerprint,
// so per-job overrides share the cache safely.
func WithWorkers(pool *WorkerPool) StartOption {
	return func(c *startConfig) { c.pool = pool; c.setPool = true }
}

// WithLimits bounds this job's resource consumption (wall-clock time,
// output bytes, queued pipe memory, replica width, sandboxing). A
// breach cancels only this job, with ErrBudgetExceeded and exit status
// ExitBudgetExceeded.
func WithLimits(l JobLimits) StartOption {
	return func(c *startConfig) { c.limits = l }
}

// WithAdmitted hands the job a scheduler slot the caller already
// acquired (via Scheduler.Admit): the job skips its own admission and
// releases the slot when it finishes. The daemon uses it to decide
// shedding before committing an HTTP status.
func WithAdmitted(release func()) StartOption {
	return func(c *startConfig) { c.admitted = release }
}

// WithTenant tags the job with a tenant identity: its admission queues
// under that key (the scheduler round-robins across keys, so one
// tenant's backlog cannot starve another's) and the tenant rides the
// job's stats row. Empty means anonymous.
func WithTenant(name string) StartOption {
	return func(c *startConfig) { c.tenant = name }
}

// jobIDs hands out process-wide job identifiers (the Pid analog).
var jobIDs atomic.Int64

// Job is a handle on one started script: wait on it, cancel it, or
// inspect it while it runs. All methods are safe for concurrent use.
type Job struct {
	id       int64
	sess     *Session
	src      string
	parsed   *shell.List
	cancel   context.CancelFunc
	done     chan struct{}
	started  time.Time
	limits   JobLimits
	budget   *runtime.Budget
	admitted func()
	tenant   string

	stream *StreamConfig

	mu       sync.Mutex
	finished bool
	code     int
	err      error
	wall     time.Duration
	interp   core.InterpStats
	// live holds the interpreter while a batch job runs, so Stats can
	// snapshot real region/traffic counters instead of zeros.
	live *core.Interp
	// runner/splan/straffic hold the streaming execution's live state.
	runner   *stream.Runner
	splan    *core.StreamPlan
	straffic *runtime.Traffic
}

// JobStats is a point-in-time view of a job, live while it runs and
// frozen once it finishes.
type JobStats struct {
	ID     int64  `json:"id"`
	Script string `json:"script"`
	// Tenant is the identity the job was admitted under ("" = anonymous).
	Tenant string `json:"tenant,omitempty"`
	// Running reports whether the job is still executing; ExitCode and
	// Err are meaningful only once it is false.
	Running     bool      `json:"running"`
	Start       time.Time `json:"start"`
	WallSeconds float64   `json:"wall_seconds"`
	ExitCode    int       `json:"exit_code"`
	Err         string    `json:"error,omitempty"`
	Interp      InterpStats
	// Limits echoes the job's configured budgets (zero = unlimited);
	// Budget is its live (or final) consumption against them.
	Limits JobLimits   `json:"limits"`
	Budget BudgetUsage `json:"budget"`
	// Stream carries the streaming runner's live metrics (rows/sec,
	// window lag, checkpoint age) for jobs started with
	// WithStreamInput; nil for batch jobs.
	Stream *StreamStats `json:"stream,omitempty"`
}

// Start parses and launches a script, returning a handle immediately.
// The script's syntax is validated synchronously (a parse error returns
// without starting anything); execution — including scheduler admission
// when the session has one — happens in the job's own goroutine.
// Cancelling ctx, or calling Job.Cancel, stops the script at the next
// statement boundary with exit status 130.
func (s *Session) Start(ctx context.Context, src string, stdio JobIO, opts ...StartOption) (*Job, error) {
	list, err := shell.Parse(src)
	if err != nil {
		return nil, err
	}
	var cfg startConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	c := s.snapshot()
	if cfg.opts != nil || cfg.setPool {
		cc := *c
		if cfg.opts != nil {
			cc.Opts = *cfg.opts
		}
		if cfg.setPool {
			if cfg.pool == nil {
				cc.Workers = nil
			} else {
				cc.Workers = cfg.pool
			}
		}
		c = &cc
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, cancel := context.WithCancel(ctx)
	blimits := cfg.limits
	if cfg.stream != nil {
		// Streaming lifecycle: MaxPipeMemory bounds the windower's
		// source buffer with pause-the-source semantics instead of
		// arming the first-breach-kills pipe budget, and WallTimeout
		// does not apply to an input that is unbounded by design.
		blimits.MaxPipeMemory = 0
		blimits.WallTimeout = 0
	}
	j := &Job{
		id:       jobIDs.Add(1),
		sess:     s,
		src:      src,
		parsed:   list,
		cancel:   cancel,
		done:     make(chan struct{}),
		started:  time.Now(),
		limits:   cfg.limits,
		budget:   runtime.NewBudget(blimits),
		admitted: cfg.admitted,
		tenant:   cfg.tenant,
		stream:   cfg.stream,
	}
	s.trackJob(j)
	go j.run(jctx, c, s.Dir, s.Vars, stdio)
	return j, nil
}

func (j *Job) run(ctx context.Context, c *core.Compiler, dir string, vars map[string]string, stdio JobIO) {
	defer j.cancel()
	defer close(j.done)
	defer j.sess.untrackJob(j)
	if j.admitted != nil {
		defer j.admitted()
	} else if c.Sched != nil {
		release, err := c.Sched.AdmitKey(ctx, j.tenant)
		if err != nil {
			code := 1
			if ctx.Err() != nil {
				// Cancelled while queued for admission: same contract
				// as cancellation mid-script.
				code = 130
			}
			j.finish(code, err, core.InterpStats{})
			return
		}
		defer release()
	}
	if j.stream != nil {
		j.runStream(ctx, c, dir, vars, stdio)
		return
	}
	// Wall-clock budget: the timer attributes the kill to the budget
	// before cancelling, so the breach outranks the generic 130.
	if j.limits.WallTimeout > 0 {
		t := time.AfterFunc(j.limits.WallTimeout, func() {
			j.budget.TripWall()
			j.cancel()
		})
		defer t.Stop()
	}
	stdout := stdio.Stdout
	if j.limits.MaxOutputBytes > 0 {
		if stdout == nil {
			stdout = io.Discard
		}
		stdout = runtime.LimitWriter(stdout, j.budget, j.cancel)
	}
	in := core.NewInterp(c, dir, vars,
		runtime.StdIO{Stdin: stdio.Stdin, Stdout: stdout, Stderr: stdio.Stderr})
	in.UseBudget(j.budget, j.limits.Sandbox)
	// Publish the interpreter so Stats reports live region and traffic
	// counters while the job runs, not zeros-until-Wait.
	j.mu.Lock()
	j.live = in
	j.mu.Unlock()
	// Reuse the list Start already parsed for validation. The recover
	// boundary turns a panic anywhere in the interpreter's own frame —
	// including user extension code running inline — into this job's
	// error, never a process crash.
	var code int
	err := func() (err error) {
		defer runtime.Contain("job", &err)
		code, err = in.RunParsed(ctx, j.parsed)
		return err
	}()
	// Budget breaches outrank the generic failure codes they cascade
	// into (a wall-timeout cancel surfaces as 130, a pipe-memory breach
	// as a plain region error) so callers see one typed outcome.
	if be := j.budget.Exceeded(); be != nil {
		code, err = ExitBudgetExceeded, be
	} else if err != nil && errors.Is(err, ErrBudgetExceeded) {
		code = ExitBudgetExceeded
	}
	j.finish(code, err, in.StatsSnapshot())
}

func (j *Job) finish(code int, err error, st core.InterpStats) {
	j.mu.Lock()
	j.finished = true
	j.code = code
	j.err = err
	j.interp = st
	j.wall = time.Since(j.started)
	j.mu.Unlock()
}

// ID is the job's process-wide identifier (the Pid analog).
func (j *Job) ID() int64 { return j.id }

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel stops the job: the script halts at its next statement boundary
// with exit status 130. Cancel after completion is a no-op.
func (j *Job) Cancel() { j.cancel() }

// Running reports whether the job is still executing.
func (j *Job) Running() bool {
	select {
	case <-j.done:
		return false
	default:
		return true
	}
}

// Wait blocks until the job finishes and returns its exit status and
// execution error (shell semantics: a non-zero status with a nil error
// is a normal script outcome).
func (j *Job) Wait() (int, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.code, j.err
}

// Stats snapshots the job: live wall time while running, final exit
// status and interpreter metrics once done.
func (j *Job) Stats() JobStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStats{
		ID:     j.id,
		Script: truncateScript(j.src),
		Tenant: j.tenant,
		Start:  j.started,
		Limits: j.limits,
		Budget: j.budget.Usage(),
	}
	if j.finished {
		st.WallSeconds = j.wall.Seconds()
		st.ExitCode = j.code
		if j.err != nil {
			st.Err = j.err.Error()
		}
		st.Interp = j.interp
	} else {
		st.Running = true
		st.WallSeconds = time.Since(j.started).Seconds()
		// Live counters: a running batch job reports its interpreter's
		// current regions and bytes/chunks moved; a running streaming
		// job reports the plan-cache and traffic meters directly.
		switch {
		case j.live != nil:
			st.Interp = j.live.StatsSnapshot()
		case j.runner != nil:
			st.Interp.Regions = int(j.runner.Stats().Windows)
			if j.splan != nil {
				h, m := j.splan.PlanHits()
				st.Interp.PlanHits, st.Interp.PlanMisses = int(h), int(m)
			}
			if j.straffic != nil {
				st.Interp.BytesMoved, st.Interp.ChunksMoved = j.straffic.Moved()
			}
		}
	}
	if j.runner != nil {
		ss := j.runner.Stats()
		st.Stream = &ss
	}
	return st
}

// truncateScript bounds the script text carried in stats rows, cutting
// on a rune boundary so the JSON stays valid UTF-8.
func truncateScript(src string) string {
	const max = 120
	if len(src) <= max {
		return src
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(src[cut]) {
		cut--
	}
	return src[:cut] + "…"
}

// trackJob registers a started job for Session.Jobs.
func (s *Session) trackJob(j *Job) {
	s.jobsMu.Lock()
	if s.jobs == nil {
		s.jobs = map[int64]*Job{}
	}
	s.jobs[j.id] = j
	s.jobsMu.Unlock()
}

func (s *Session) untrackJob(j *Job) {
	s.jobsMu.Lock()
	delete(s.jobs, j.id)
	s.jobsMu.Unlock()
}

// Jobs snapshots the session's currently-running jobs, ordered by ID —
// the live per-job rows behind pash-serve's /metrics.
func (s *Session) Jobs() []JobStats {
	s.jobsMu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobsMu.Unlock()
	out := make([]JobStats, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Stats())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
