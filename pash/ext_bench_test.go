package pash

// The extension-API speedup acceptance: a user-registered command with
// a KernelFactory and AggregatorSpec must demonstrably profit from the
// fast paths it joins. Following the reproduction's substitution rule
// (this host may have a single CPU), per-node works are measured for
// real in profiling mode and projected onto the multicore scheduling
// simulator — the same methodology as the Fig. 7 and aggregation-tree
// benchmarks.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// heavySpec is a CPU-bound custom command: `heavy` prefixes each line
// with an iterated FNV hash (stateless, kernel-backed); `heavy -t`
// prints one total (pure, aggregator-backed).
func heavySpec() CommandSpec {
	const rounds = 120
	hash := func(line []byte) uint32 {
		h := uint32(2166136261)
		for r := 0; r < rounds; r++ {
			for _, c := range line {
				h = (h ^ uint32(c)) * 16777619
			}
		}
		return h
	}
	perLine := func(out, line []byte) []byte {
		out = append(out, fmt.Sprintf("%08x ", hash(line))...)
		out = append(out, line...)
		return append(out, '\n')
	}
	return CommandSpec{
		Name: "heavy",
		Run: func(args []string, stdin io.Reader, stdout io.Writer) error {
			total := false
			for _, a := range args {
				if a == "-t" {
					total = true
				}
			}
			data, err := io.ReadAll(stdin)
			if err != nil {
				return err
			}
			var sum uint64
			var out []byte
			for len(data) > 0 {
				i := bytes.IndexByte(data, '\n')
				line := data
				if i >= 0 {
					line, data = data[:i], data[i+1:]
				} else {
					data = nil
				}
				if total {
					sum += uint64(hash(line))
				} else {
					out = perLine(out, line)
				}
			}
			if total {
				out = strconv.AppendUint(out, sum, 10)
				out = append(out, '\n')
			}
			_, err = stdout.Write(out)
			return err
		},
		Annotation: NewAnnotation().
			When(Opt("-t"), ClassPure, []IO{Stdin()}, []IO{Stdout()}).
			Otherwise(ClassStateless, []IO{Stdin()}, []IO{Stdout()}),
		Kernel: func(args []string) (Kernel, bool) {
			if len(args) != 0 {
				return nil, false
			}
			return &heavyKernel{perLine: perLine}, true
		},
		Aggregator: &AggregatorSpec{
			AggName: "heavy-agg",
			AggArgs: []string{},
			Agg: func(args []string, inputs []io.Reader, stdout io.Writer) error {
				var sum uint64
				for _, r := range inputs {
					data, err := io.ReadAll(r)
					if err != nil {
						return err
					}
					for _, f := range strings.Fields(string(data)) {
						n, err := strconv.ParseUint(f, 10, 64)
						if err != nil {
							return err
						}
						sum += n
					}
				}
				_, err := fmt.Fprintf(stdout, "%d\n", sum)
				return err
			},
			Associative: true,
		},
	}
}

type heavyKernel struct {
	carry   []byte
	perLine func(out, line []byte) []byte
}

func (k *heavyKernel) Apply(out, in []byte) []byte {
	for len(in) > 0 {
		i := bytes.IndexByte(in, '\n')
		if i < 0 {
			k.carry = append(k.carry, in...)
			return out
		}
		line := in[:i]
		if len(k.carry) > 0 {
			k.carry = append(k.carry, line...)
			line = k.carry
		}
		out = k.perLine(out, line)
		k.carry = k.carry[:0]
		in = in[i+1:]
	}
	return out
}

func (k *heavyKernel) Finish(out []byte) []byte {
	if len(k.carry) > 0 {
		out = k.perLine(out, k.carry)
		k.carry = k.carry[:0]
	}
	return out
}

func (k *heavyKernel) Status() error { return nil }

// extInput builds a deterministic workload.
func extInput(lines int) string {
	rng := rand.New(rand.NewSource(97))
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "payload-%d-%d some words here %d\n", i, rng.Int31(), rng.Int31())
	}
	return sb.String()
}

// measureExt runs a script with the heavy command registered, in
// profiling mode, and returns output plus the projected wall time on a
// simulated 8-core machine.
func measureExt(t testing.TB, opts Options, script, input string) (string, time.Duration) {
	t.Helper()
	s := NewSession(opts)
	if err := s.Register(heavySpec()); err != nil {
		t.Fatal(err)
	}
	cc := *s.snapshot()
	cc.Opts.MeasureMode = true
	var out bytes.Buffer
	in := core.NewInterp(&cc, "", nil,
		runtime.StdIO{Stdin: strings.NewReader(input), Stdout: &out})
	code, err := in.RunScript(context.Background(), script)
	if err != nil || code != 0 {
		t.Fatalf("%q: code=%d err=%v", script, code, err)
	}
	var total time.Duration
	for _, p := range in.Profiles {
		total += sim.Makespan(p.Graph, p.Times, sim.Config{
			Cores:           8,
			PerNodeOverhead: 200 * time.Microsecond,
		})
	}
	return out.String(), total
}

// extSpeedups measures the width-8 projected speedups of the
// kernel-backed and aggregator-backed forms over their sequential runs.
func extSpeedups(t testing.TB, lines int) (kernel, agg float64) {
	input := extInput(lines)

	rr := DefaultOptions(8)
	rr.SplitMode = SplitRoundRobin

	script := "heavy | tr a-f A-F"
	seqOut, seqTime := measureExt(t, SequentialOptions(), script, input)
	parOut, parTime := measureExt(t, rr, script, input)
	if seqOut != parOut {
		t.Fatalf("%q parallel output diverged", script)
	}
	kernel = float64(seqTime) / float64(parTime)

	script = "heavy -t"
	seqOut, seqTime = measureExt(t, SequentialOptions(), script, input)
	parOut, parTime = measureExt(t, DefaultOptions(8), script, input)
	if seqOut != parOut {
		t.Fatalf("%q parallel output diverged", script)
	}
	agg = float64(seqTime) / float64(parTime)
	return kernel, agg
}

// TestExtensionSpeedupAtWidth8 is the acceptance bar: the
// user-registered command must beat its sequential run by >= 2x at
// width 8, in both the fused/rr-split form and the aggregation-tree
// form.
func TestExtensionSpeedupAtWidth8(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run")
	}
	kernel, agg := extSpeedups(t, 12_000)
	t.Logf("width-8 projected speedup: fused+rr %.2fx, map+agg-tree %.2fx", kernel, agg)
	if kernel < 2 {
		t.Errorf("kernel-backed speedup %.2fx < 2x", kernel)
	}
	if agg < 2 {
		t.Errorf("aggregator-backed speedup %.2fx < 2x", agg)
	}
}

// BenchmarkExtensionSpeedup reports the same metrics as benchmark
// units, alongside the real wall time of the parallel run.
func BenchmarkExtensionSpeedup(b *testing.B) {
	var kernel, agg float64
	for i := 0; i < b.N; i++ {
		kernel, agg = extSpeedups(b, 12_000)
	}
	b.ReportMetric(kernel, "fused-rr@8x")
	b.ReportMetric(agg, "agg-tree@8x")
}
