package pash

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fuzzSeeds is the structural corpus FuzzRunScript starts from: the
// shapes the interpreter supports (pipelines, redirections, heredocs,
// subshells, compounds, expansions, background jobs), plus a few
// known-nasty fragments. The fuzzer mutates from here into the space of
// almost-valid scripts, which is where interpreter panics live.
var fuzzSeeds = []string{
	"echo hello | tr a-z A-Z",
	"cat in.txt | sort | uniq -c | sort -rn | head -n 3",
	"grep x in.txt | wc -l",
	"seq 100 | grep 7 | wc -l",
	"x=world; echo hello $x",
	"echo $(seq 3 | wc -l)",
	"(echo a; echo b) | sort",
	"cat <<EOF | tr a-z A-Z\nhello $x heredoc\nEOF",
	"cat <<'EOF' | wc -c\nraw $x `cmd`\nEOF",
	"tr a-z A-Z < in.txt > out.tmp",
	"for f in a b c; do echo $f; done | sort -r",
	"if true; then echo yes; else echo no; fi",
	"while read line; do echo $line; done < in.txt",
	"false || echo fallback && echo chained",
	"sleep 0 & wait",
	"echo unterminated 'quote",
	"cat < <(",
	"| | |",
	"echo \\",
	"cat <<EOF\nno terminator",
	"a=$($(echo echo) nested)",
	"cd sub; cat ../in.txt",
}

// FuzzRunScript drives arbitrary byte strings through the full stack —
// parser, expansion, compiler, planner, and the parallel runtime — the
// way a hostile pash-serve client could. Every run is sandboxed to a
// throwaway directory and budgeted, so the only failure the fuzzer can
// report is the one we care about: a panic escaping the containment
// boundaries or a hang past the wall budget.
func FuzzRunScript(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "in.txt"), []byte("alpha\nbeta\ngamma x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
			t.Fatal(err)
		}
		s := NewSession(DefaultOptions(4))
		s.Dir = dir
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		job, err := s.Start(ctx, src, JobIO{
			Stdin:  strings.NewReader("fuzz\ninput lines\n"),
			Stdout: io.Discard,
			Stderr: io.Discard,
		}, WithLimits(JobLimits{
			WallTimeout:    2 * time.Second,
			MaxOutputBytes: 1 << 20,
			MaxPipeMemory:  8 << 20,
			MaxProcs:       4,
			Sandbox:        true,
		}))
		if err != nil {
			// Parse rejection is a fine outcome for fuzz input.
			return
		}
		select {
		case <-job.Done():
		case <-time.After(8 * time.Second):
			t.Fatalf("job outlived its 2s wall budget: %q", src)
		}
		// Any exit status is acceptable; what may not happen is a panic
		// escaping containment (the fuzz harness would catch the crash)
		// or a budget breach mislabeled as success.
		code, werr := job.Wait()
		if werr != nil && strings.Contains(werr.Error(), "panic") {
			t.Fatalf("panic escaped into the job error (containment should still report, "+
				"but scripts in the corpus must not panic the interpreter): %q -> %v", src, werr)
		}
		_ = code
	})
}
