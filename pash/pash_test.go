package pash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestSessionRun(t *testing.T) {
	s := NewSession(DefaultOptions(4))
	var out bytes.Buffer
	code, err := s.Run(context.Background(), "grep -c a", strings.NewReader("a\nb\nab\n"), &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	if out.String() != "2\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestSessionParallelMatchesSequential(t *testing.T) {
	var input strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&input, "word%d value%d\n", i%97, i%13)
	}
	script := "tr a-z A-Z | sort | uniq -c | sort -rn | head -n 5"
	run := func(opts Options) string {
		s := NewSession(opts)
		var out bytes.Buffer
		if _, err := s.Run(context.Background(), script, strings.NewReader(input.String()), &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	seq := run(SequentialOptions())
	par := run(DefaultOptions(8))
	if seq != par {
		t.Errorf("parallel diverged:\nseq %q\npar %q", seq, par)
	}
}

func TestRegisterCommandAndAnnotation(t *testing.T) {
	s := NewSession(DefaultOptions(4))
	s.RegisterCommand("double", func(args []string, stdin io.Reader, stdout io.Writer) error {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			fmt.Fprintf(stdout, "%s %s\n", line, line)
		}
		return nil
	})
	if err := s.RegisterAnnotation(`double { | _ => (S, [stdin], [stdout]) }`); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err := s.Run(context.Background(), "double | head -n 2", strings.NewReader("x\ny\nz\n"), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "x x\ny y\n" {
		t.Errorf("custom command output = %q", out.String())
	}
	// The shared registries must be unaffected by the session-local
	// registration.
	s2 := NewSession(DefaultOptions(2))
	var out2 bytes.Buffer
	if _, err := s2.Run(context.Background(), "double", strings.NewReader("x\n"), &out2, io.Discard); err == nil {
		t.Error("custom command leaked into a fresh session")
	}
}

func TestCompileEmit(t *testing.T) {
	s := NewSession(DefaultOptions(2))
	plan, err := s.Compile("cat a.txt | grep x | wc -l")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Emit(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mkfifo") {
		t.Errorf("emitted plan missing fifos:\n%s", buf.String())
	}
}

func TestRunStats(t *testing.T) {
	s := NewSession(DefaultOptions(8))
	var out bytes.Buffer
	_, stats, err := s.RunStats(context.Background(), "grep a | sort",
		strings.NewReader("b\na\nab\n"), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Regions != 1 || stats.TotalNodes < 10 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestTable1Export(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTable1(&buf)
	if !strings.Contains(buf.String(), "Stateless") {
		t.Error("WriteTable1 output malformed")
	}
}
