package pash

// Tenant governance re-exports: the public face of the meter package's
// per-tenant quotas, rate limits, and VSA-style usage accounting. See
// "Multi-tenant front door" in the runtime README for the full story.

import "repro/internal/meter"

// Meter is the tenant registry: per-tenant job quotas, GCRA rate
// buckets, and VSA usage accumulators with watermark-driven background
// commits.
type Meter = meter.Meter

// MeterConfig tunes a Meter (default quota, rate/burst, commit
// watermarks and interval, sink).
type MeterConfig = meter.Config

// Tenant is one tenant's accounting row inside a Meter.
type Tenant = meter.Tenant

// TenantStats is one per-tenant metrics row (usage vs quota, sheds by
// cause, commit count).
type TenantStats = meter.TenantStats

// MeterStats is the meter-wide snapshot carried in /metrics.
type MeterStats = meter.Stats

// TenantUsage is a tenant's consumption in the metered dimensions
// (jobs, wall-ns, bytes).
type TenantUsage = meter.Usage

// ShedCause classifies an admission refusal: quota (403), rate (429),
// or capacity (503).
type ShedCause = meter.Cause

// Shed causes, re-exported for switch labels.
const (
	ShedNone     = meter.CauseNone
	ShedQuota    = meter.CauseQuota
	ShedRate     = meter.CauseRate
	ShedCapacity = meter.CauseCapacity
)

// NewMeter builds a tenant meter; call Start on it to run the
// background committer.
func NewMeter(cfg MeterConfig) *Meter { return meter.New(cfg) }

// NewMeterFileSink opens (or appends to) a JSONL commit log for use as
// MeterConfig.Sink.
func NewMeterFileSink(path string) (*meter.FileSink, error) { return meter.NewFileSink(path) }
