package pash

// Streaming jobs: WithStreamInput turns a Start call into a continuous
// execution over an unbounded source. The script is compiled once into
// a StreamPlan (stateless stages plus, optionally, an associative
// aggregation tail), and the internal/stream runner executes it window
// by window — each window a normal batch region through the plan
// cache, scheduler, and distributed plane. Lifecycle differences from
// batch jobs, per the streaming contract:
//
//   - WallTimeout does not apply (the job is unbounded by design);
//     cancel the context or call Job.Cancel to stop it.
//   - MaxPipeMemory governs the windower's source buffer with
//     pause-the-source semantics instead of first-breach-kills.
//   - Exit status reflects the stream lifecycle: 0 on clean source
//     EOF, 130 on cancellation, ExitBudgetExceeded on output-budget
//     breach.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// StreamStats re-exports the streaming runner's live metrics (rows/sec,
// window lag, checkpoint age, backpressure pauses).
type StreamStats = stream.Stats

// ErrNotStreamable marks scripts the streaming planner rejects; only
// single pipelines of stateless stages with an optional associative
// aggregation tail can stream.
var ErrNotStreamable = core.ErrNotStreamable

// StreamConfig shapes one streaming job. Exactly one of FollowPath and
// Reader must be set.
type StreamConfig struct {
	// FollowPath tails a file with rotation detection (tail -F).
	FollowPath string
	// Reader streams from an arbitrary reader (socket, request body);
	// its EOF ends the stream cleanly.
	Reader io.Reader
	// Offset starts a follow source at a byte offset (ignored when a
	// checkpoint resume supplies one).
	Offset int64
	// Poll is the follow source's no-data poll interval (default 50ms).
	Poll time.Duration

	// Interval is the window time trigger (default 1s). WindowBytes,
	// when > 0, also closes windows at that size — deterministically,
	// which replay-exact failover needs.
	Interval    time.Duration
	WindowBytes int64

	// CheckpointPath enables checkpointed failover; CheckpointEvery
	// throttles saves (<= 0 saves after every window). Resume loads the
	// checkpoint at CheckpointPath and continues from it.
	CheckpointPath  string
	CheckpointEvery time.Duration
	Resume          bool
}

// WithStreamInput runs the job as a streaming execution over sc's
// source instead of a batch run over stdio.Stdin.
func WithStreamInput(sc StreamConfig) StartOption {
	return func(c *startConfig) { scc := sc; c.stream = &scc }
}

// CheckStream reports whether src can run as a streaming job, without
// starting one: nil, or an error matching ErrNotStreamable explaining
// which shape rule the script breaks. pash-serve uses it to answer 400
// before committing a streaming response.
func (s *Session) CheckStream(src string) error {
	_, err := s.snapshot().PlanStream(src, s.Dir, s.Vars)
	return err
}

// runStream is the streaming counterpart of the batch half of Job.run;
// admission has already happened in run.
func (j *Job) runStream(ctx context.Context, c *core.Compiler, dir string, vars map[string]string, stdio JobIO) {
	sc := j.stream
	plan, err := c.PlanStream(j.src, dir, vars)
	if err != nil {
		code := 1
		if errors.Is(err, core.ErrNotStreamable) {
			code = 2
		}
		j.finish(code, err, core.InterpStats{})
		return
	}
	tr := &runtime.Traffic{}
	plan.Budget = j.budget
	plan.Traffic = tr
	plan.Sandbox = j.limits.Sandbox

	spec := plan.Window()
	if sc.Interval > 0 {
		spec.Interval = sc.Interval
	}
	spec.MaxBytes = sc.WindowBytes
	cumulative := spec.Emit == dfg.EmitCumulative

	var cp *stream.Checkpoint
	if sc.CheckpointPath != "" && sc.Resume {
		cp, err = stream.LoadCheckpoint(sc.CheckpointPath)
		if err != nil {
			j.finish(1, err, core.InterpStats{})
			return
		}
		if cp != nil && cp.Emit != spec.Emit.String() {
			j.finish(1, fmt.Errorf("pash: checkpoint is %s but plan is %s", cp.Emit, spec.Emit), core.InterpStats{})
			return
		}
	}

	var src stream.Source
	switch {
	case sc.FollowPath != "" && sc.Reader != nil:
		j.finish(1, errors.New("pash: StreamConfig sets both FollowPath and Reader"), core.InterpStats{})
		return
	case sc.FollowPath != "":
		offset := sc.Offset
		if cp != nil {
			offset = cp.SourceOffset
		}
		fs, ferr := stream.NewFollowSource(sc.FollowPath, offset, sc.Poll)
		if ferr != nil {
			j.finish(1, ferr, core.InterpStats{})
			return
		}
		src = fs
	case sc.Reader != nil:
		// A plain reader cannot seek: a resume keeps the fold state but
		// replays nothing.
		src = stream.NewReaderSource(sc.Reader)
	default:
		j.finish(1, errors.New("pash: StreamConfig needs FollowPath or Reader"), core.InterpStats{})
		return
	}
	defer src.Close()
	// Cancellation must unblock a source parked in Read. Job.run
	// cancels ctx on every exit path, so this goroutine never leaks.
	go func() {
		<-ctx.Done()
		src.Close()
	}()

	stdout := stdio.Stdout
	if stdout == nil {
		stdout = io.Discard
	}
	if j.limits.MaxOutputBytes > 0 {
		stdout = runtime.LimitWriter(stdout, j.budget, j.cancel)
	}
	stderr := stdio.Stderr
	if stderr == nil {
		stderr = io.Discard
	}

	// Width: a streaming job holds its parallelism as a revocable lease
	// so an endless job cannot starve later admissions — at every
	// window boundary Reassess sheds the extra width tokens while the
	// admission queue is non-empty and regrows once it drains.
	want := j.budget.CapWidth(c.Opts.Width)
	widthFn := func() int { return want }
	if c.Sched != nil && want > 1 {
		lease := c.Sched.LeaseWidth(want)
		defer lease.Release()
		widthFn = lease.Reassess
	}

	r, err := stream.NewRunner(stream.Config{
		Source:          src,
		Exec:            plan,
		Cumulative:      cumulative,
		Interval:        spec.Interval,
		MaxBytes:        spec.MaxBytes,
		MaxBuffer:       j.limits.MaxPipeMemory,
		CheckpointPath:  sc.CheckpointPath,
		CheckpointEvery: sc.CheckpointEvery,
		Resume:          cp,
		Width:           widthFn,
		Out:             stdout,
		Errw:            stderr,
	})
	if err != nil {
		j.finish(1, err, core.InterpStats{})
		return
	}
	j.mu.Lock()
	j.runner = r
	j.splan = plan
	j.straffic = tr
	j.mu.Unlock()

	err = func() (err error) {
		defer runtime.Contain("stream-job", &err)
		return r.Run(ctx)
	}()
	code := 0
	switch {
	case err == nil:
	case ctx.Err() != nil:
		code, err = 130, nil
	default:
		code = 1
	}
	if be := j.budget.Exceeded(); be != nil {
		code, err = ExitBudgetExceeded, be
	}
	j.finish(code, err, j.streamInterpStats())
}

// streamInterpStats shapes the streaming job's data-plane counters into
// the InterpStats slot of JobStats: regions = windows executed, plan
// hits/misses from the stream plan, live traffic from the meter.
func (j *Job) streamInterpStats() core.InterpStats {
	j.mu.Lock()
	r, plan, tr := j.runner, j.splan, j.straffic
	j.mu.Unlock()
	var st core.InterpStats
	if r != nil {
		st.Regions = int(r.Stats().Windows)
	}
	if plan != nil {
		h, m := plan.PlanHits()
		st.PlanHits, st.PlanMisses = int(h), int(m)
	}
	if tr != nil {
		st.BytesMoved, st.ChunksMoved = tr.Moved()
	}
	return st
}
